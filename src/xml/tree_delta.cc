#include "xml/tree_delta.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/codec.h"

namespace smoqe::xml {

namespace {

/// True iff `id` is an element still attached to the document (tombstoned
/// slots have a null parent but are not the root). O(depth).
bool IsReachableElement(const Tree& tree, NodeId id) {
  if (id < 0 || id >= tree.size() || !tree.is_element(id)) return false;
  NodeId n = id;
  while (tree.parent(n) != kNullNode) n = tree.parent(n);
  return n == tree.root();
}

Status OpError(size_t index, const char* what) {
  return Status::FailedPrecondition("TreeDelta op #" + std::to_string(index) +
                                    ": " + what);
}

/// Capture that also reports each item's source NodeId (parallel to
/// items). ApplyTo's inverse pass needs the ids to remap undo targets that
/// point into a deleted-then-reinserted subtree.
Fragment CaptureWithIds(const Tree& tree, NodeId root,
                        std::vector<NodeId>* ids) {
  Fragment out;
  // Explicit (node, fragment-parent-index) stack; children re-pushed in
  // reverse so the items come out in document (pre)order.
  std::vector<std::pair<NodeId, int32_t>> stack = {{root, -1}};
  std::vector<NodeId> kids;
  while (!stack.empty()) {
    auto [n, parent_idx] = stack.back();
    stack.pop_back();
    Fragment::Item item;
    item.is_text = !tree.is_element(n);
    item.parent = parent_idx;
    item.value = item.is_text ? tree.text_value(n) : tree.label_name(n);
    const int32_t idx = static_cast<int32_t>(out.items.size());
    out.items.push_back(std::move(item));
    if (ids) ids->push_back(n);
    kids.clear();
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, idx);
    }
  }
  return out;
}

}  // namespace

Fragment Fragment::Capture(const Tree& tree, NodeId root) {
  return CaptureWithIds(tree, root, nullptr);
}

NodeId Fragment::Instantiate(Tree* tree, NodeId parent,
                             int32_t before_index) const {
  NodeId before = kNullNode;
  if (before_index > 0) {
    for (NodeId c = tree->first_child(parent); c != kNullNode;
         c = tree->next_sibling(c)) {
      if (tree->child_index(c) == before_index) {
        before = c;
        break;
      }
    }
  }
  std::vector<NodeId> ids(items.size(), kNullNode);
  ids[0] = tree->InsertElementBefore(parent, before, items[0].value);
  for (size_t i = 1; i < items.size(); ++i) {
    const Item& item = items[i];
    const NodeId p = ids[item.parent];
    ids[i] = item.is_text ? tree->AddText(p, item.value)
                          : tree->AddElement(p, item.value);
  }
  return ids[0];
}

int32_t Fragment::CountElements() const {
  int32_t count = 0;
  for (const Item& item : items) {
    if (!item.is_text) ++count;
  }
  return count;
}

void TreeDelta::AddInsert(NodeId parent, int32_t before_index,
                          Fragment fragment) {
  DeltaOp op;
  op.kind = DeltaOpKind::kInsert;
  op.target = parent;
  op.before_index = before_index;
  op.fragment = std::move(fragment);
  ops_.push_back(std::move(op));
}

void TreeDelta::AddDelete(NodeId victim) {
  DeltaOp op;
  op.kind = DeltaOpKind::kDelete;
  op.target = victim;
  ops_.push_back(std::move(op));
}

void TreeDelta::AddRelabel(NodeId node, std::string_view label) {
  DeltaOp op;
  op.kind = DeltaOpKind::kRelabel;
  op.target = node;
  op.label = std::string(label);
  ops_.push_back(std::move(op));
}

Status TreeDelta::ApplyTo(Tree* tree, DocPlane::Maintainer* maintainer,
                          TreeDelta* inverse,
                          std::vector<NodeId>* regions) const {
  std::vector<DeltaOp> undo;  // forward order; reversed into `inverse`
  // For each undo-insert, the source NodeId of every fragment item (the
  // deleted subtree's ids); empty for other undo kinds. Feeds the remap
  // pass below.
  std::vector<std::vector<NodeId>> undo_ids;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const DeltaOp& op = ops_[i];
    NodeId region = kNullNode;
    switch (op.kind) {
      case DeltaOpKind::kRelabel: {
        if (!IsReachableElement(*tree, op.target)) {
          return OpError(i, "relabel target is not a reachable element");
        }
        if (inverse) {
          DeltaOp u;
          u.kind = DeltaOpKind::kRelabel;
          u.target = op.target;
          u.label = tree->label_name(op.target);
          undo.push_back(std::move(u));
          undo_ids.emplace_back();
        }
        tree->Relabel(op.target, op.label);
        if (maintainer) maintainer->ApplyRelabel(*tree, op.target);
        region = tree->parent(op.target) == kNullNode
                     ? op.target
                     : tree->parent(op.target);
        break;
      }
      case DeltaOpKind::kDelete: {
        if (!IsReachableElement(*tree, op.target)) {
          return OpError(i, "delete victim is not a reachable element");
        }
        if (op.target == tree->root()) {
          return OpError(i, "cannot delete the root");
        }
        region = tree->parent(op.target);
        if (inverse) {
          // The pre-image: where the subtree sat (by child slot, since
          // reinsertion allocates fresh ids) and what it contained.
          DeltaOp u;
          u.kind = DeltaOpKind::kInsert;
          u.target = region;
          u.before_index = tree->child_index(op.target);
          std::vector<NodeId> ids;
          u.fragment = CaptureWithIds(*tree, op.target, &ids);
          undo.push_back(std::move(u));
          undo_ids.push_back(std::move(ids));
        }
        tree->DetachSubtree(op.target);
        if (maintainer) maintainer->ApplyDelete(op.target);
        break;
      }
      case DeltaOpKind::kInsert: {
        if (!IsReachableElement(*tree, op.target)) {
          return OpError(i, "insert parent is not a reachable element");
        }
        if (op.fragment.empty() || op.fragment.items[0].is_text ||
            op.fragment.items[0].parent != -1) {
          return OpError(i, "fragment must be rooted at an element");
        }
        const NodeId root =
            op.fragment.Instantiate(tree, op.target, op.before_index);
        if (maintainer) maintainer->ApplyInsert(*tree, root);
        if (inverse) {
          DeltaOp u;
          u.kind = DeltaOpKind::kDelete;
          u.target = root;
          undo.push_back(std::move(u));
          undo_ids.emplace_back();
        }
        region = op.target;
        break;
      }
    }
    if (regions) regions->push_back(region);
  }
  if (inverse) {
    // Undo ops recorded before a delete may target nodes INSIDE the deleted
    // subtree; by the time they execute (inverse order), that subtree has
    // been re-instantiated under FRESH ids and the recorded targets are
    // tombstones. Instantiation is deterministic (fresh ids are allocated
    // contiguously from the arena end, one per fragment item in order), so
    // a dry run of the undo sequence on a scratch copy of the post-delta
    // tree discovers exactly the ids the real inverse application will
    // allocate -- remap the stale targets through it. Nested
    // delete-inside-delete chains resolve naturally, since each simulated
    // undo-insert extends the map before older undos consult it.
    bool needs_remap = false;
    for (const DeltaOp& u : undo) {
      if (u.kind == DeltaOpKind::kInsert) {
        needs_remap = true;
        break;
      }
    }
    if (needs_remap && undo.size() > 1) {
      Tree sim = *tree;
      std::unordered_map<NodeId, NodeId> remap;
      for (size_t k = undo.size(); k-- > 0;) {
        DeltaOp& u = undo[k];
        auto it = remap.find(u.target);
        if (it != remap.end()) u.target = it->second;
        switch (u.kind) {
          case DeltaOpKind::kRelabel:
            sim.Relabel(u.target, u.label);
            break;
          case DeltaOpKind::kDelete:
            sim.DetachSubtree(u.target);
            break;
          case DeltaOpKind::kInsert: {
            const NodeId base = sim.size();
            u.fragment.Instantiate(&sim, u.target, u.before_index);
            const std::vector<NodeId>& ids = undo_ids[k];
            for (size_t j = 0; j < ids.size(); ++j) {
              remap[ids[j]] = base + static_cast<NodeId>(j);
            }
            break;
          }
        }
      }
    }
    TreeDelta inv;
    inv.from_version_ = to_version_;
    inv.to_version_ = from_version_;
    std::reverse(undo.begin(), undo.end());
    inv.ops_ = std::move(undo);
    *inverse = std::move(inv);
  }
  return Status::OK();
}

StatusOr<TreeDelta> TreeDelta::Compose(const TreeDelta& first,
                                       const TreeDelta& second) {
  if (first.to_version() != second.from_version()) {
    return Status::FailedPrecondition(
        "Compose: version mismatch (" + std::to_string(first.to_version()) +
        " vs " + std::to_string(second.from_version()) + ")");
  }
  TreeDelta out;
  out.from_version_ = first.from_version_;
  out.to_version_ = second.to_version_;
  out.ops_ = first.ops_;
  out.ops_.insert(out.ops_.end(), second.ops_.begin(), second.ops_.end());
  return out;
}

void TreeDelta::Serialize(std::string* out) const {
  common::PutU64(out, from_version_);
  common::PutU64(out, to_version_);
  common::PutU32(out, static_cast<uint32_t>(ops_.size()));
  for (const DeltaOp& op : ops_) {
    common::PutU8(out, static_cast<uint8_t>(op.kind));
    common::PutI32(out, op.target);
    common::PutI32(out, op.before_index);
    common::PutBytes(out, op.label);
    common::PutU32(out, static_cast<uint32_t>(op.fragment.items.size()));
    for (const Fragment::Item& item : op.fragment.items) {
      common::PutU8(out, item.is_text ? 1 : 0);
      common::PutI32(out, item.parent);
      common::PutBytes(out, item.value);
    }
  }
}

StatusOr<TreeDelta> TreeDelta::Deserialize(std::string_view bytes) {
  common::Cursor cur(bytes);
  TreeDelta delta;
  uint32_t op_count = 0;
  if (!cur.ReadU64(&delta.from_version_) || !cur.ReadU64(&delta.to_version_) ||
      !cur.ReadU32(&op_count)) {
    return Status::ParseError("delta: truncated header");
  }
  // Each op encodes to >= 13 bytes, so a count the remaining input cannot
  // hold is corruption -- reject before reserving.
  if (op_count > cur.remaining() / 13) {
    return Status::ParseError("delta: op count exceeds payload");
  }
  delta.ops_.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    DeltaOp op;
    uint8_t kind = 0;
    uint32_t item_count = 0;
    if (!cur.ReadU8(&kind) || !cur.ReadI32(&op.target) ||
        !cur.ReadI32(&op.before_index) || !cur.ReadBytes(&op.label) ||
        !cur.ReadU32(&item_count)) {
      return Status::ParseError("delta: truncated op");
    }
    if (kind > static_cast<uint8_t>(DeltaOpKind::kRelabel)) {
      return Status::ParseError("delta: unknown op kind");
    }
    op.kind = static_cast<DeltaOpKind>(kind);
    if (item_count > cur.remaining() / 9) {  // items are >= 9 bytes
      return Status::ParseError("delta: item count exceeds payload");
    }
    op.fragment.items.reserve(item_count);
    for (uint32_t j = 0; j < item_count; ++j) {
      Fragment::Item item;
      uint8_t is_text = 0;
      if (!cur.ReadU8(&is_text) || !cur.ReadI32(&item.parent) ||
          !cur.ReadBytes(&item.value)) {
        return Status::ParseError("delta: truncated fragment item");
      }
      // Preorder parent links: the root at -1, every other item pointing at
      // an EARLIER item (Instantiate indexes items by these).
      const bool valid_parent =
          (j == 0 && item.parent == -1) ||
          (j > 0 && item.parent >= 0 && static_cast<uint32_t>(item.parent) < j);
      if (!valid_parent || (j == 0 && is_text != 0)) {
        return Status::ParseError("delta: malformed fragment structure");
      }
      item.is_text = is_text != 0;
      op.fragment.items.push_back(std::move(item));
    }
    delta.ops_.push_back(std::move(op));
  }
  if (cur.remaining() != 0) {
    return Status::ParseError("delta: trailing bytes");
  }
  return delta;
}

bool StructurallyEqual(const Tree& a, const Tree& b) {
  if (a.empty() || b.empty()) return a.empty() == b.empty();
  std::vector<std::pair<NodeId, NodeId>> stack = {{a.root(), b.root()}};
  std::vector<std::pair<NodeId, NodeId>> kids;
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (a.kind(x) != b.kind(y)) return false;
    if (a.is_element(x)) {
      if (a.label_name(x) != b.label_name(y)) return false;
    } else {
      if (a.text_value(x) != b.text_value(y)) return false;
    }
    kids.clear();
    NodeId cx = a.first_child(x);
    NodeId cy = b.first_child(y);
    while (cx != kNullNode && cy != kNullNode) {
      kids.emplace_back(cx, cy);
      cx = a.next_sibling(cx);
      cy = b.next_sibling(cy);
    }
    if (cx != cy) return false;  // one side has extra children
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return true;
}

}  // namespace smoqe::xml
