// TreeDelta: the versioned, composable, invertible edit unit for mutable
// documents.
//
// DESIGN NOTE (diff discipline for a world that was built frozen)
// ---------------------------------------------------------------
// Everything downstream of xml::Tree -- the columnar DocPlane, the shared
// TransitionPlane, the sharded evaluators -- was designed against a frozen
// document. Mutability therefore does NOT arrive as "call Relabel whenever
// you like": it arrives as a diff discipline borrowed from Pacemaker's CIB
// (the cluster information base ships every change as a versioned diff that
// peers validate, apply, and can invert). A TreeDelta is an ordered list of
// three op kinds over one tree:
//
//   insert   a whole Fragment (self-contained serialized subtree) becomes a
//            new child of `target`, at 1-based child slot `before_index`
//            (out-of-range appends). Fragments are captured label/text by
//            VALUE, so a delta is meaningful beyond the tree it was
//            recorded on;
//   delete   the subtree under `target` is detached (ids become tombstones,
//            see the MUTATION note in tree.h);
//   relabel  `target`'s element label changes.
//
// and carries [from_version, to_version): a delta ADMITS against a tree
// whose version equals from_version and nothing else -- the publisher
// (plane_epoch.h) enforces that, exactly like the CIB rejects a patch whose
// base revision does not match.
//
// Three properties make deltas more than a mutation log:
//
//  * INVERTIBLE. ApplyTo captures each op's pre-image as it goes (the old
//    label, the detached subtree as a Fragment, the fresh insert's slot)
//    and hands back the inverse delta: ops inverted AND reversed, versions
//    swapped. Applying delta then inverse yields a tree StructurallyEqual
//    to the original (ids differ -- reinsertion allocates fresh arena
//    slots, which is why inverse inserts address their slot by child index,
//    not by NodeId). Undo ops that target a node inside a LATER-deleted
//    subtree would address tombstones; ApplyTo dry-runs the undo sequence
//    on a scratch copy and remaps those targets to the (deterministic) ids
//    the re-instantiation will allocate.
//  * COMPOSABLE. Compose(a, b) with a.to_version == b.from_version is just
//    op concatenation, because arena ids are DETERMINISTIC: replaying the
//    same op sequence on a structurally identical tree allocates the same
//    ids, so b's id-addressed ops stay valid. The epoch publisher leans on
//    the same determinism to recycle retired tree replicas by replay.
//  * PLANE-MAINTAINING. ApplyTo threads an optional DocPlane::Maintainer
//    through the op loop, so the columnar plane is patched in lockstep with
//    the tree instead of being rebuilt, and reports each op's REGION ROOT
//    (the parent whose child list changed; the root for root-level edits) --
//    the subtree a standing query must re-enter (exec/standing_query.h).
//
// Validation is per-op, immediately before that op applies: targets must be
// reachable elements (never the root for delete), fragments must be rooted
// at an element. A failed op leaves the tree partially edited -- callers
// that need all-or-nothing (the publisher) apply deltas to a private
// replica and discard it on error.

#ifndef SMOQE_XML_TREE_DELTA_H_
#define SMOQE_XML_TREE_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::xml {

/// A self-contained serialized subtree: labels and text values by VALUE,
/// structure as preorder parent links. Captured from a live subtree and
/// instantiable into any tree (interning labels as needed).
struct Fragment {
  struct Item {
    bool is_text = false;
    int32_t parent = -1;       // index of the parent Item; -1 for the root
    std::string value;         // element label, or text content
  };
  std::vector<Item> items;     // preorder; items[0] is the (element) root

  /// Serializes the subtree under `root` (must be an element). Iterative;
  /// safe on 100k-deep spines.
  static Fragment Capture(const Tree& tree, NodeId root);

  /// Materializes the fragment as a child of `parent`, occupying 1-based
  /// child slot `before_index` (out-of-range = append). Returns the new
  /// root's id; ids are allocated in preorder, deterministically.
  NodeId Instantiate(Tree* tree, NodeId parent, int32_t before_index) const;

  int32_t CountElements() const;
  bool empty() const { return items.empty(); }
};

enum class DeltaOpKind : uint8_t { kInsert, kDelete, kRelabel };

struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kRelabel;
  NodeId target = kNullNode;   // insert: the parent; delete: the victim;
                               // relabel: the node
  int32_t before_index = 0;    // insert only: 1-based child slot; 0 appends
  std::string label;           // relabel only: the new label
  Fragment fragment;           // insert only: the subtree to add
};

class TreeDelta {
 public:
  TreeDelta() = default;
  explicit TreeDelta(uint64_t from_version)
      : from_version_(from_version), to_version_(from_version + 1) {}

  void AddInsert(NodeId parent, int32_t before_index, Fragment fragment);
  void AddDelete(NodeId victim);
  void AddRelabel(NodeId node, std::string_view label);

  uint64_t from_version() const { return from_version_; }
  uint64_t to_version() const { return to_version_; }
  const std::vector<DeltaOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Applies every op in order. Optionally patches `maintainer` in
  /// lockstep, records the inverse delta into `inverse`, and appends each
  /// op's region root to `regions` (parallel to ops()). Per-op validation;
  /// on error the tree is partially edited (see the design note).
  Status ApplyTo(Tree* tree, DocPlane::Maintainer* maintainer = nullptr,
                 TreeDelta* inverse = nullptr,
                 std::vector<NodeId>* regions = nullptr) const;

  /// Concatenation: requires first.to_version() == second.from_version().
  static StatusOr<TreeDelta> Compose(const TreeDelta& first,
                                     const TreeDelta& second);

  /// Appends the binary wire form (the WAL record payload -- see
  /// storage/wal.h): versions, then each op with its fragment,
  /// little-endian with length-prefixed strings (common/codec.h).
  void Serialize(std::string* out) const;

  /// Decodes a Serialize'd delta. Memory-safe on ANY input: corrupt bytes
  /// (truncation, bit flips) yield a Status error, never UB -- the
  /// corruption-fuzz suite drives this directly. Semantic validation
  /// against a concrete tree stays in ApplyTo.
  static StatusOr<TreeDelta> Deserialize(std::string_view bytes);

 private:
  uint64_t from_version_ = 0;
  uint64_t to_version_ = 1;
  std::vector<DeltaOp> ops_;
};

/// Shape equality ignoring NodeIds and tombstoned (detached) slots: same
/// kinds, label NAMES, text values, and sibling order. Iterative.
bool StructurallyEqual(const Tree& a, const Tree& b);

}  // namespace smoqe::xml

#endif  // SMOQE_XML_TREE_DELTA_H_
