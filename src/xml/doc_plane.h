// The columnar document plane: a structure-of-arrays mirror of a Tree in
// preorder, built for traversal instead of construction.
//
// DESIGN NOTE (columnar traversal and label skipping)
// ---------------------------------------------------
// Every evaluator in SMOQE walks the document depth-first. On the pointer
// arena (xml::Tree::Node, ~28 bytes of parent/child/sibling links) that walk
// is a chain of dependent loads: decode a node, chase first_child, chase
// next_sibling, skip text nodes -- one cache line of mostly-unused fields
// per step. The HyPE family prunes whole subtrees, but every SURVIVING
// region is still paid for node by node, even when the live engines are in a
// "simple" configuration waiting for a handful of labels.
//
// The DocPlane replaces that walk with dense arrays over the ELEMENT nodes
// of one tree, indexed by preorder position `pos` (text nodes never carry
// evaluation state; their contribution is folded into a presence bit):
//
//   labels_[pos]   the element's interned label
//   parent_[pos]   the parent's position (-1 at the root position)
//   depth_[pos]    root position = 0
//   extent_[pos]   number of element DESCENDANTS, so the subtree occupying
//                  [pos, pos + extent_[pos] + 1) is skipped by a single
//                  cursor addition -- no pointer chase, no stack
//   text_bits_    one bit per position: the element has a text child (the
//                  prefilter for text() = 'c' predicates)
//   node_of_/pos_of_  the position <-> NodeId bijection (answers are
//                  reported as NodeIds; positions are traversal-internal)
//
// plus one POSTING LIST per label: the sorted positions where the label
// occurs, packed back-to-back in a single pool (each position carries
// exactly one label, so the lists are pairwise disjoint and partition the
// position space -- content-interning across labels would never fire; the
// pool buys consolidation, not sharing). Postings turn "find the next node
// with a label in set R inside this subtree" into a handful of
// lower_bounds -- the structural-index idea OptHyPE applies to pruning,
// extended to navigation.
// The traversal drivers (hype::RunSharedPass and BatchHypeEvaluator's joint
// driver) use exactly that query for their jump mode: when every live engine
// is in a simple configuration, only positions whose label is in the merged
// relevant set can change any engine's state, and the driver leaps from
// candidate to candidate, reconstructing visit accounting for the skipped
// transparent positions from the extents (see the jump-mode notes in
// hype/engine.h and hype/batch_hype.h).
//
// Two ways to build one:
//  * DocPlane::Build(tree): one explicit-stack DFS over a finished tree
//    (any construction order -- NodeId order need not be preorder);
//  * DocPlane::Builder: incremental preorder emission for builders that
//    already produce the document depth-first. view::Materialize drives it
//    so a materialized view carries its plane with no second pass.
//
// The plane borrows the tree it mirrors (like SubtreeLabelIndex); it is
// immutable after construction and safe to share read-only across threads.
// It does not observe later tree mutations. When the tree DOES mutate,
// DocPlane::Maintainer derives the next plane from the previous one by
// splicing the columnar arrays (memmove-style, no pointer-chasing DFS):
// each bounded-region edit patches extents along the ancestor chain, shifts
// the per-label posting lists, and re-derives only the suffix of the
// NodeId<->position map that actually moved. xml::EpochPublisher
// (plane_epoch.h) wraps that into copy-on-write snapshots.

#ifndef SMOQE_XML_DOC_PLANE_H_
#define SMOQE_XML_DOC_PLANE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/name_table.h"
#include "common/status.h"
#include "xml/tree.h"

namespace smoqe::xml {

class DocPlane {
 public:
  /// An empty plane (not usable for traversal); assign from Build/Finish.
  DocPlane() = default;

  /// Mirrors a finished tree (one DFS; handles any node-insertion order).
  static DocPlane Build(const Tree& tree);

  /// Number of element positions (== tree.CountElements()).
  int32_t size() const { return static_cast<int32_t>(labels_.size()); }

  LabelId label(int32_t pos) const { return labels_[pos]; }
  int32_t parent(int32_t pos) const { return parent_[pos]; }
  int32_t depth(int32_t pos) const { return depth_[pos]; }
  int32_t extent(int32_t pos) const { return extent_[pos]; }
  bool has_text(int32_t pos) const {
    return (text_bits_[pos >> 6] >> (pos & 63)) & 1;
  }

  /// One past the last descendant position: the subtree of `pos` occupies
  /// [pos, end_of(pos)).
  int32_t end_of(int32_t pos) const { return pos + extent_[pos] + 1; }

  NodeId node_at(int32_t pos) const { return node_of_[pos]; }
  /// Position of an element node; -1 for text nodes.
  int32_t pos_of(NodeId id) const { return pos_of_[id]; }

  /// Sorted positions where `label` occurs (empty span for labels that
  /// never occur, including out-of-range ids from a foreign NameTable).
  std::span<const int32_t> postings(LabelId label) const {
    if (label < 0 || label >= static_cast<LabelId>(posting_ref_.size())) {
      return {};
    }
    const auto& [offset, count] = posting_ref_[label];
    return {posting_pool_.data() + offset, static_cast<size_t>(count)};
  }

  size_t MemoryBytes() const;

  /// Field-by-field equality (labels, parents, depths, extents, text bits,
  /// NodeId maps, postings). The bit-identity oracle for the incremental
  /// maintainer: a patched plane must SameAs a from-scratch Build.
  bool SameAs(const DocPlane& other) const;

  /// Incremental preorder emission, for builders that already walk the
  /// document depth-first (the materializer); defined below the class.
  class Builder;

  /// Patches an existing plane after bounded-region tree edits; defined
  /// below Builder.
  class Maintainer;

 private:
  // Storage-layer snapshot codec (storage/snapshot.cc): serializes the
  // columns verbatim so recovery reloads the plane without an O(N) Build.
  friend struct PlaneCodec;

  std::vector<LabelId> labels_;
  std::vector<int32_t> parent_;
  std::vector<int32_t> depth_;
  std::vector<int32_t> extent_;
  std::vector<uint64_t> text_bits_;
  std::vector<NodeId> node_of_;
  std::vector<int32_t> pos_of_;
  // Posting storage: per label an (offset, count) into one shared pool
  // (see the design note).
  std::vector<int32_t> posting_pool_;
  std::vector<std::pair<int32_t, int32_t>> posting_ref_;
};

/// Usage per element: Enter at creation, Exit once its whole subtree is
/// emitted; MarkText when a text child is appended. Finish packs the arrays
/// once the root has exited.
///
/// Misuse (MarkText/Exit with no open position, a second root after the
/// first closed, Finish with positions still open) is recorded in status()
/// and the offending call becomes a no-op: silently accepting it used to
/// corrupt text-presence bits and extents, which the Maintainer would then
/// inherit into every later epoch. Finish on an errored builder returns an
/// empty plane; callers that can fail mid-emission (the materializer's
/// error paths) may simply abandon the builder.
class DocPlane::Builder {
 public:
  /// Opens a position for an element. Calls must be properly nested;
  /// returns -1 (and records status) on a second root.
  int32_t Enter(LabelId label, NodeId node);
  /// Flags the innermost open position as having a text child.
  void MarkText();
  void Exit();
  /// `tree_size`/`num_labels` size the NodeId map and the posting table.
  DocPlane Finish(int32_t tree_size, int32_t num_labels);

  /// OK, or the first misuse this builder saw.
  const Status& status() const { return status_; }

 private:
  void Fail(const char* what);

  DocPlane plane_;
  std::vector<int32_t> open_;  // stack of positions awaiting Exit
  // Per-label postings accumulated before pooling (positions arrive in
  // increasing order, so each list is born sorted).
  std::vector<std::vector<int32_t>> postings_;
  Status status_;
};

/// Derives the plane of an edited tree from the plane of its predecessor.
///
/// Construction unpacks the base plane's packed forms (text bits, posting
/// pool) into splice-friendly working arrays -- one O(plane) pass. Each
/// Apply* then patches a bounded region: array splices for the edited
/// subtree's rows, an extent walk up the ancestor chain, posting-list
/// shifts, and a suffix refresh of the position map. Take() repacks into an
/// immutable DocPlane that is bit-identical (SameAs) to DocPlane::Build on
/// the edited tree -- the property the randomized delta tests and the
/// bench_mutation gate enforce.
///
/// Apply* calls mirror Tree edits and must be issued AFTER the tree edit,
/// in the same order. One Maintainer serves many edits; Take() consumes it.
class DocPlane::Maintainer {
 public:
  explicit Maintainer(const DocPlane& base);

  /// After Tree::Relabel(node, ...): patch the label column + postings.
  void ApplyRelabel(const Tree& tree, NodeId node);
  /// After Tree::DetachSubtree(victim): splice the subtree's rows out.
  void ApplyDelete(NodeId victim);
  /// After inserting `fragment_root` (and its subtree) into the tree:
  /// splice the fragment's freshly-built rows in.
  void ApplyInsert(const Tree& tree, NodeId fragment_root);

  /// Repacks into an immutable plane for `tree` (which must reflect every
  /// applied edit). The maintainer is spent afterwards.
  DocPlane Take(const Tree& tree);

 private:
  void RefreshPosOf(int32_t from_pos);

  // Working (unpacked) columns; same meaning as the DocPlane members.
  std::vector<LabelId> labels_;
  std::vector<int32_t> parent_;
  std::vector<int32_t> depth_;
  std::vector<int32_t> extent_;
  std::vector<uint8_t> text_;  // unpacked text_bits_
  std::vector<NodeId> node_of_;
  std::vector<int32_t> pos_of_;  // grown on demand as the arena grows
  std::vector<std::vector<int32_t>> postings_;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_DOC_PLANE_H_
