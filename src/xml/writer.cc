#include "xml/writer.h"

namespace smoqe::xml {

namespace {

void Escape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      case '&': *out += "&amp;"; break;
      default: *out += c;
    }
  }
}

void WriteNode(const Tree& tree, NodeId id, const WriteOptions& opts, int depth,
               std::string* out) {
  auto indent = [&]() {
    if (opts.indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  };
  if (!tree.is_element(id)) {
    indent();
    Escape(tree.text_value(id), out);
    if (opts.indent) *out += '\n';
    return;
  }
  indent();
  const std::string& name = tree.label_name(id);
  if (tree.first_child(id) == kNullNode) {
    *out += '<';
    *out += name;
    *out += "/>";
    if (opts.indent) *out += '\n';
    return;
  }
  *out += '<';
  *out += name;
  *out += '>';
  if (opts.indent) {
    // Indenting around a text child would pad its value with whitespace the
    // parser keeps (the value is no longer whitespace-only), breaking the
    // write -> re-parse round trip. Write mixed-content elements inline.
    bool has_text_child = false;
    for (NodeId c = tree.first_child(id); c != kNullNode;
         c = tree.next_sibling(c)) {
      if (!tree.is_element(c)) {
        has_text_child = true;
        break;
      }
    }
    if (has_text_child) {
      const WriteOptions inline_opts;
      for (NodeId c = tree.first_child(id); c != kNullNode;
           c = tree.next_sibling(c)) {
        WriteNode(tree, c, inline_opts, 0, out);
      }
      *out += "</";
      *out += name;
      *out += ">\n";
      return;
    }
    *out += '\n';
  }
  for (NodeId c = tree.first_child(id); c != kNullNode; c = tree.next_sibling(c)) {
    WriteNode(tree, c, opts, depth + 1, out);
  }
  indent();
  *out += "</";
  *out += name;
  *out += '>';
  if (opts.indent) *out += '\n';
}

}  // namespace

std::string WriteXml(const Tree& tree, NodeId node, const WriteOptions& opts) {
  std::string out;
  if (!tree.empty()) WriteNode(tree, node, opts, 0, &out);
  return out;
}

std::string WriteXml(const Tree& tree, const WriteOptions& opts) {
  if (tree.empty()) return "";
  return WriteXml(tree, tree.root(), opts);
}

}  // namespace smoqe::xml
