// PlaneEpoch / EpochPublisher: copy-on-write snapshots of a mutating
// document and its columnar plane.
//
// DESIGN NOTE (one writer, many wait-free readers)
// ------------------------------------------------
// Every evaluator in SMOQE reads a (Tree, DocPlane) pair and assumes both
// are frozen. The publisher keeps that assumption true under writes by
// never mutating what a reader can see: the current epoch's tree and plane
// are published behind shared_ptr<const>, a reader pins them with
// Snapshot() (two refcount bumps under a mutex -- no copying), and a write
// builds the NEXT epoch on a PRIVATE replica before an O(1) pointer swap
// publishes it. Readers mid-pass simply finish on the epoch they pinned;
// the epoch (and the arena behind it) stays alive until the last snapshot
// drops.
//
// Apply(delta) admits a TreeDelta only when delta.from_version() matches
// the current version (the Pacemaker CIB patch discipline -- see
// tree_delta.h), then:
//
//  * acquires a writable replica at the current version -- preferably by
//    RECYCLING a retired epoch's tree whose last snapshot has dropped
//    (use_count()==1), replaying the bounded delta log to roll it forward.
//    Replay is exact, not approximate: arena ids are deterministic, so a
//    replayed replica is id-for-id the tree readers saw. Only when no
//    retired replica qualifies does the publisher pay a full clone;
//  * patches the previous epoch's plane through DocPlane::Maintainer in
//    lockstep with the tree edits (bit-identical to a from-scratch Build --
//    the bench_mutation gate), falling back to a full rebuild when the
//    delta touches a large fraction of the document;
//  * publishes {tree, plane, version+1} and retires the previous replica
//    into the recycling pool.
//
// Apply is single-writer: one thread (or an external serialization) issues
// writes; Snapshot() is safe from any thread at any time. A delta that
// fails validation corrupts only the private replica, which is discarded --
// readers and the published epoch never observe a partial write.

#ifndef SMOQE_XML_PLANE_EPOCH_H_
#define SMOQE_XML_PLANE_EPOCH_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"
#include "xml/tree_delta.h"

namespace smoqe::xml {

/// One immutable (tree, plane, version) snapshot. Copy freely; the pointed
/// data outlives every copy.
struct PlaneEpoch {
  std::shared_ptr<const Tree> tree;
  std::shared_ptr<const DocPlane> plane;
  uint64_t version = 0;
};

class EpochPublisher {
 public:
  /// Takes ownership of the initial document (version 0) and builds its
  /// plane.
  explicit EpochPublisher(Tree initial);

  /// Resumes publishing from a recovered epoch: takes ownership of the
  /// tree AND its already-built plane at `version` (storage::Recover hands
  /// these back; rebuilding the plane here would double the recovery cost).
  /// `plane` must mirror `tree` exactly.
  EpochPublisher(Tree initial, DocPlane plane, uint64_t version);

  /// Pins the current epoch. Wait-free for practical purposes (a mutex'd
  /// pair of refcount bumps); never blocks on a concurrent Apply's heavy
  /// work.
  PlaneEpoch Snapshot() const;

  uint64_t version() const;

  /// Applies one delta (admitted iff delta.from_version() == version())
  /// and publishes the next epoch. Single-writer; see the design note.
  Status Apply(const TreeDelta& delta);

  struct Stats {
    int64_t epochs_published = 0;
    int64_t replicas_recycled = 0;  // writable tree obtained by log replay
    int64_t replicas_cloned = 0;    // ... by deep copy (pool exhausted)
    int64_t planes_patched = 0;     // plane derived via DocPlane::Maintainer
    int64_t planes_rebuilt = 0;     // ... via full DocPlane::Build
  };
  Stats stats() const;

 private:
  struct Retired {
    std::shared_ptr<Tree> tree;
    uint64_t version = 0;
  };

  /// A writable tree equal to the current epoch's, by recycle or clone.
  std::shared_ptr<Tree> AcquireWritable(const PlaneEpoch& current,
                                        bool* recycled);

  static constexpr size_t kMaxPool = 4;  // retired replicas kept around
  static constexpr size_t kMaxLog = 16;  // deltas kept for replay

  mutable std::mutex mu_;
  PlaneEpoch epoch_;
  std::shared_ptr<Tree> live_;  // non-const alias of epoch_.tree
  std::vector<Retired> pool_;
  std::deque<TreeDelta> log_;  // contiguous from_versions, newest at back
  Stats stats_;
};

}  // namespace smoqe::xml

#endif  // SMOQE_XML_PLANE_EPOCH_H_
