// The HyPE engine/plane/driver split.
//
// DESIGN NOTE (batched multi-query evaluation)
// --------------------------------------------
// Algorithm HyPE (Section 6 of the paper) answers one MFA per depth-first
// pass over the document. A view server answering many concurrent queries
// against the *same* materialized view repeats that pass per query, so the
// traversal itself — node decoding, child iteration, subtree-label-index
// lookups — dominates. This header splits the original HypeEvaluator into:
//
//  * TransitionPlane (transition_plane.h) — ALL state derived from the query
//    alone: the hash-consed configuration store, the memoized transition and
//    TransAux tables, productivity analyses, relevant-label sets. The
//    rewritten MFA is a fixed object per query, so this derived state is
//    immutable-once-computed and SHARED: every shard worker, batch driver,
//    and service batch evaluating the same query over the same document
//    reads one plane (lock-free steady state; a single writer lock on the
//    cold interning path). Transition computation walks the CompiledMfa CSR
//    mirror (automata/compiled_mfa.h) rather than the construction-oriented
//    Mfa vectors.
//
//  * HypeEngine — the per-RUN state only: the per-depth frames (fstates↑
//    truth values, cans vertices), the cans DAG, epoch-marked scratch, and
//    the run statistics. The engine never walks the tree; it reacts to
//    traversal events:
//
//       Start(context) /          resolve the context configuration
//         PrepareRoot(context)
//       DescendInto(label, set)   memoized plane transition + prologue;
//                                 false = prune the subtree
//       ExitNode(n)               epilogue: same-node fixpoint, cans
//                                 deletions, fold fstates↑ into the parent
//       TakeAnswers()             phase two: collect answers from cans
//
//    EvalStats::configs_interned counts the plane insertions ATTRIBUTED to
//    this engine's calls: a solo engine on a private plane reports the same
//    number as before the split, engines sharing a plane split the total
//    between them, and a warm start reports zero.
//
//  * RunSharedPass — the traversal driver: ONE iterative, recursion-free
//    (explicit-stack) depth-first walk that drives any number of engines in
//    lockstep. The walk iterates a columnar xml::DocPlane (preorder arrays
//    with subtree extents) instead of chasing first_child/next_sibling: a
//    frame scans the contiguous position range of its subtree, descending
//    into a child costs one cursor read, and skipping a pruned subtree is a
//    single cursor addition (pos += extent + 1). Per position the driver
//    decodes the label and resolves the subtree-label-index set once, then
//    fans the result out to every engine still live there (per-node live
//    lists in a stack arena, so the fan-out costs O(live), not O(batch)). A
//    subtree is skipped only when EVERY live engine prunes it, so each
//    engine observes exactly the nodes its solo pass would have visited —
//    per-engine answers and statistics are identical to single-query
//    evaluation by construction.
//
//    JUMP MODE. Without a subtree-label index, a frame whose live engines
//    are ALL in a jump-safe state (simple configuration, no final selecting
//    state, no open cans region) advances by posting list instead of by
//    position: only labels in the merged RELEVANT set of the live
//    configurations (RelevantLabels: labels whose memoized transition leaves
//    the configuration) can change any engine's state, prune, or answer, so
//    the driver lower_bounds the posting lists of those labels and leaps to
//    the next candidate position inside the frame's extent. Skipped
//    positions are TRANSPARENT — every engine self-loops through them
//    without pruning or answering — so the full DFS would have entered each
//    one and changed nothing but its visit counter; the driver restores
//    those counters in bulk (AddVisited) and replays the enter/exit event
//    stream only for the candidate's ancestors (reconstructed from the
//    plane's parent/depth/extent arrays), pushing real frames so engine
//    state, folds, and pops happen exactly as the full DFS would. Answers
//    and per-engine statistics therefore stay bit-identical to the
//    full-DFS/solo pass; the randomized jump-equivalence suite
//    (tests/doc_plane_test.cc) enforces this.
//
// The per-node work of the original Visit() is aggressively hoisted into
// intern time: each Config precomputes its intra-node ε-edge pairs, operator
// operand positions (in the CompiledMfa's stratified sweep order), and
// annotated-state positions, and each memoized transition precomputes the
// parent→child cans label-edge pairs and the fstates↑ fold pairs. The hot
// path is then pure array traffic — no binary searches, no position
// stamping.
//
// The explicit stack also removes the recursion of the original Visit(),
// bounding stack use on documents of arbitrary depth (regression-tested at
// depth 100k+).
//
// HypeEvaluator (hype.h) drives one engine through this driver.
// BatchHypeEvaluator (batch_hype.h) drives N engines through its own
// sharing driver built on the low-level hooks (PrepareRoot, PeekTransition,
// DescendWith, BeginFrames): it interns the TUPLE of per-engine
// configurations per node and memoizes joint transitions, so a batch of
// queries advances with one table lookup per (joint state, label), and
// engines in a "simple" state (no AFA requests pending, no cans region,
// nothing annotated) ride the joint table with no per-node work at all.

#ifndef SMOQE_HYPE_ENGINE_H_
#define SMOQE_HYPE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "automata/mfa.h"
#include "common/cancellation.h"
#include "hype/cans.h"
#include "hype/index.h"
#include "hype/transition_plane.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::hype {

struct EvalStats {
  int64_t elements_total = 0;
  int64_t elements_visited = 0;
  int64_t cans_vertices = 0;
  int64_t cans_edges = 0;
  int64_t afa_state_requests = 0;
  /// TransitionPlane insertions attributed to this engine's calls (zero on a
  /// fully warm plane; the sum across engines sharing a plane equals the
  /// plane's total).
  int64_t configs_interned = 0;

  /// Fraction of element nodes never visited (the paper reports 78.2% for
  /// HyPE and 88% for OptHyPE on its example queries).
  double PrunedFraction() const {
    if (elements_total == 0) return 0.0;
    return 1.0 - static_cast<double>(elements_visited) /
                     static_cast<double>(elements_total);
  }
};

struct HypeOptions {
  /// When set, enables index-based pruning (OptHyPE / OptHyPE-C depending on
  /// how the index was built). The index must have been built for the same
  /// tree.
  const SubtreeLabelIndex* index = nullptr;

  /// Columnar plane of the same tree (borrowed). Evaluator front-ends
  /// (HypeEvaluator, BatchHypeEvaluator) build and own one when null and
  /// hand it down; pass a shared plane to avoid the O(N) rebuild per
  /// evaluator. The engine never walks, but it uses the plane's
  /// text-presence bits to short-circuit text() predicates at pop time
  /// (sound to leave null: predicates are then evaluated via the tree).
  const xml::DocPlane* plane = nullptr;

  /// Shared compiled query state (see transition_plane.h). Must have been
  /// built for the same tree, MFA, and index. Null = the engine builds a
  /// private plane (solo behavior, identical to the pre-split evaluator).
  std::shared_ptr<TransitionPlane> transition_plane = nullptr;

  /// Allows the traversal driver to engage jump mode (see the design note
  /// above). Off forces the full columnar DFS -- equivalence tests and the
  /// bench baseline use this; answers/statistics are identical either way.
  bool enable_jump = true;
};

/// Per-query evaluation state of Algorithm HyPE, driven by RunSharedPass or
/// the batch sharing driver. One evaluation is Start() (or PrepareRoot +
/// BeginFrames); the pass; TakeAnswers(). The transition plane persists
/// across evaluations AND across engines (repeated or sharded Evals get warm
/// transition tables).
class HypeEngine {
 public:
  HypeEngine(const xml::Tree& tree, const automata::Mfa& mfa,
             HypeOptions options = {});

  /// Resets per-run state, resolves the context configuration, and opens the
  /// context frame. Returns false when the configuration is dead (the pass
  /// can skip this engine entirely; TakeAnswers still yields no answers).
  bool Start(xml::NodeId context);

  /// Memoized child transition + child prologue when the engine descends;
  /// false = the subtree is pruned for this engine.
  bool DescendInto(LabelId child_label, int32_t child_eff_set);

  /// Epilogue for the node the engine last entered: same-node operator
  /// fixpoint, cans deletions, answer reporting, fold into the parent frame.
  void ExitNode(xml::NodeId node);

  /// Phase two: sorted ids of the answer nodes of the completed pass.
  std::vector<xml::NodeId> TakeAnswers();

  /// Frame depth (context frame = 0); -1 when no frame is open.
  int depth() const { return depth_; }

  const EvalStats& stats() const { return stats_; }
  const SubtreeLabelIndex* index() const { return options_.index; }
  const std::shared_ptr<TransitionPlane>& transition_plane() const {
    return options_.transition_plane;
  }

  // ---- low-level hooks for the batch sharing driver (batch_hype.cc) ----

  using SuccRef = hype::SuccRef;

  /// Like Start, but does not open the context frame (the engine stays
  /// frameless); returns the context configuration id, or -1 when dead.
  int32_t PrepareRoot(xml::NodeId context);

  /// The memoized transition out of `config` (no frame side effects; safe to
  /// call for frameless engines). Plane insertions are attributed to this
  /// engine's configs_interned.
  SuccRef PeekTransition(int32_t config, LabelId tree_label, int32_t eff_set) {
    return trans_->Transition(config, tree_label, eff_set,
                              &stats_.configs_interned);
  }

  /// Pushes a child frame for an already-computed successor and runs the
  /// node prologue. Precondition: a frame is open (depth() >= 0).
  void DescendWith(SuccRef succ);

  /// Opens the engine's bottom frame mid-pass at a node with configuration
  /// `config` (the engine was frameless above; nothing folds upward).
  /// Precondition: depth() == -1.
  void BeginFrames(int32_t config);

  /// Records a direct answer for a frameless engine at `node`.
  void EmitAnswer(xml::NodeId node) { direct_answers_.push_back(node); }

  /// Accounts nodes visited framelessly (batch driver bookkeeping).
  void AddVisited(int64_t n) { stats_.elements_visited += n; }

  bool ConfigDead(int32_t config) const { return trans_->config(config).dead; }
  bool ConfigHasFinal(int32_t config) const {
    return trans_->config(config).has_final;
  }
  /// Simple = no AFA requests, nothing annotated: outside a region the
  /// engine's whole per-node behavior is determined by the config id, so the
  /// batch driver needs no frame for it.
  bool ConfigSimple(int32_t config) const {
    return trans_->config(config).IsSimple();
  }

  /// The RELEVANT labels of a live simple configuration in no-index mode:
  /// tree labels whose memoized child transition leaves `config` (changes
  /// the configuration, prunes, or reaches final/annotated states). On
  /// every other label the transition is the identity self-loop, so a node
  /// carrying one is TRANSPARENT for this engine -- entering it changes
  /// nothing observable but the visit counter. Jump-mode drivers skip runs
  /// of transparent positions wholesale (see the design note). Derived once
  /// per config by probing the full transition row, then cached in the
  /// shared plane. Precondition: no index.
  std::span<const LabelId> RelevantLabels(int32_t config) {
    return trans_->RelevantLabels(config, &stats_.configs_interned);
  }

  /// True when the driver may skip transparent positions while this engine
  /// holds `config` at its open frame: simple (self-loop behavior is fully
  /// config-determined), no final state (no answer at every visited node),
  /// and outside any cans region (`in_region`, the caller's frame state --
  /// a region inherited from an annotated ancestor keeps edge-mapping
  /// composition live even through simple configurations).
  bool ConfigJumpSafe(int32_t config, bool in_region) const {
    return !in_region && ConfigSimple(config) && !ConfigHasFinal(config);
  }

  /// Region status of the engine's innermost open frame (RunSharedPass's
  /// jump-safety probe). Precondition: depth() >= 0.
  bool TopFrameInRegion() const { return frames_[depth_]->region; }
  int32_t TopConfig() const { return frames_[depth_]->config; }

 private:
  using StateId = automata::StateId;
  using ConfigId = int32_t;
  using Config = TransitionPlane::Config;

  // Reusable per-depth scratch for the traversal.
  struct Frame {
    ConfigId config = -1;
    int32_t aux = -1;         // edge data into this node (fold pairs etc.)
    std::vector<char> fvals;  // aligned with config freq
    // The node's cans vertices: `vcount` contiguous ids starting at `vbase`,
    // aligned with the config's mstates. Only nodes whose vertices can be
    // deleted or can carry answers (annotated / final configs) materialize
    // vertices; barren in-region nodes are pass-through (vcount 0), and
    // eff_aux/eff_vbase address the nearest materialized ancestor with the
    // composed edge mapping (path compression over non-deletable vertices).
    CansGraph::VertexId vbase = 0;
    int32_t vcount = 0;
    CansGraph::VertexId eff_vbase = 0;
    int32_t eff_aux = -1;  // -1: no incoming cans edges to wire
    bool entered_in_region = false;  // region status inherited from the parent
    bool region = false;             // after possibly opening one here
  };
  Frame& FrameAt(int depth) {
    if (static_cast<size_t>(depth) < frames_.size()) return *frames_[depth];
    return GrowFrames(depth);
  }
  Frame& GrowFrames(int depth);

  void EnterNode();  // node prologue for the frame at depth_

  /// Engine-local cache in front of the plane's aux-composition memo: the
  /// plane side takes a shared lock per lookup, and this runs once per
  /// barren pass-through node inside every cans region -- a hot path on
  /// filter-heavy documents. Aux ids are plane-global and immutable, so
  /// caching them engine-side is free of coherence concerns.
  int32_t ComposeAuxCached(int32_t a, int32_t b) {
    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                   static_cast<uint32_t>(b);
    auto it = compose_memo_.find(key);
    if (it != compose_memo_.end()) return it->second;
    int32_t id = trans_->ComposeAux(a, b);
    compose_memo_.emplace(key, id);
    return id;
  }

  const xml::Tree& tree_;
  const automata::Mfa& mfa_;
  HypeOptions options_;
  TransitionPlane* trans_;  // = options_.transition_plane.get()
  EvalStats stats_;

  // Per-run state.
  CansGraph cans_;
  std::vector<xml::NodeId> direct_answers_;
  int depth_ = -1;

  // Scratch (per-depth frames; epoch-marked deleted-state array for the pop
  // path). 64-bit epoch: a persistent server engine bumps it once per node
  // pop, which would wrap 32 bits within hours of load.
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<int64_t> nfa_deleted_mark_;
  int64_t nfa_deleted_epoch_ = 0;
  std::vector<uint64_t> answer_bits_;  // TakeAnswers bitmap-sort scratch
  std::unordered_map<uint64_t, int32_t> compose_memo_;  // see ComposeAuxCached
};

/// Statistics of one shared pass (driver-side, per walk not per engine).
struct SharedPassStats {
  int64_t nodes_walked = 0;     // element nodes the shared walk entered
  int64_t subtrees_skipped = 0; // children pruned by every live engine
  int64_t positions_jumped = 0; // transparent positions skipped by jump mode
};

/// Drives `engines` through one explicit-stack depth-first pass over the
/// plane of `tree` from `context`. Every engine must have been Start()ed at
/// the same context and returned true, and must have been built with the
/// same `index` (or null); `plane` must mirror `tree`. Each engine's
/// answers/statistics equal what its solo pass would produce, with or
/// without `enable_jump` (jump engages only without an index, and only at
/// frames where every live engine is jump-safe).
///
/// `gate` (optional) is polled once per walk step, so a cancellation or an
/// expired deadline aborts the pass within one checkpoint interval of node
/// entries; the walk returns early with `gate->tripped()` set and the
/// engines' partial answers must be discarded (the next Start()/PrepareRoot
/// resets all per-run state, so aborted engines are reusable as-is).
SharedPassStats RunSharedPass(const xml::Tree& tree,
                              const xml::DocPlane& plane,
                              const SubtreeLabelIndex* index,
                              xml::NodeId context,
                              std::span<HypeEngine* const> engines,
                              bool enable_jump = true,
                              EvalGate* gate = nullptr);

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_ENGINE_H_
