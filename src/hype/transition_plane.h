// TransitionPlane: the shared, compiled evaluation state of one query over
// one document.
//
// DESIGN NOTE (the engine/plane split)
// ------------------------------------
// The rewritten MFA of a query is a FIXED object (Section 5's single-
// automaton rewriting): everything HyPE derives from it while evaluating --
// the hash-consed configurations, the memoized (config, label[, label-set])
// transition tables, the per-transition cans edge data (TransAux), the
// productivity analyses, the jump-mode relevant-label sets -- is a pure
// function of (MFA, document label table, index). Before this layer, every
// HypeEngine owned a private copy of that state, so a sharded pass re-
// interned identical configurations once per shard and every service batch
// started cold. The TransitionPlane hoists all of it into one read-mostly
// object shared by every engine evaluating the same query over the same
// document:
//
//  * per-shard engines of exec::ShardedBatchEvaluator (probes, workers, the
//    fallback) share one plane per query;
//  * successive exec::QueryService batches reuse planes through the
//    service's TransitionPlaneStore, so steady-state traffic starts warm;
//  * what stays in HypeEngine is exactly the per-RUN state: frames, the
//    cans graph, epoch scratch, statistics.
//
// CONCURRENCY. Shard workers read the plane from many threads while the
// cold path still interns new state. The design is read-mostly:
//
//  * steady-state lookups are LOCK-FREE: each configuration carries a dense
//    transition row of packed (config, aux) successors in atomics
//    (release-published, acquire-read), or -- in indexed mode -- a lock-free
//    prepend-only list per label of (label-set, successor) nodes;
//  * configurations and TransAux records live in append-only chunked stores
//    whose element addresses never move, indexed without locks;
//  * misses take the plane's single writer lock (std::shared_mutex,
//    exclusive), recompute, then publish with a release store -- the same
//    snapshot-publish discipline the columnar DocPlane uses for documents;
//  * genuinely cold read-mostly side tables (the aux-composition memo, the
//    per-context root-configuration memo) take a shared lock on the hit
//    path.
//
// Interning is attributed to whichever engine's call inserted the state:
// EvalStats::configs_interned now counts plane insertions attributed to the
// run, so a warm start interns exactly zero and a sharded cold start interns
// each configuration once in total instead of once per shard.
//
// Transition computation itself walks the automata::CompiledMfa CSR mirror
// (flat per-state edge slices, precomputed ε-closures, stratified AFA order)
// with MFA labels pre-bound to the document's label ids at plane
// construction, instead of chasing the Mfa's vectors-of-vectors per state.

#ifndef SMOQE_HYPE_TRANSITION_PLANE_H_
#define SMOQE_HYPE_TRANSITION_PLANE_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/compiled_mfa.h"
#include "automata/mfa.h"
#include "common/name_table.h"
#include "hype/index.h"
#include "xml/tree.h"

namespace smoqe::hype {

/// Aggregated footprint of a TransitionPlaneStore (see stats()).
struct PlaneStoreStats {
  int64_t planes = 0;            // currently resident
  int64_t evictions = 0;         // soft-evicted since construction
  int64_t configs_interned = 0;  // summed over resident planes
  int64_t approx_bytes = 0;      // summed TransitionPlane::ApproxBytes
};

/// A memoized successor: the child configuration plus the id of the
/// precomputed parent→child edge data (cans label edges, fold pairs);
/// aux -1 = both empty (the common navigation case).
struct SuccRef {
  int32_t config = -1;
  int32_t aux = -1;
};

namespace internal {

/// Append-only store with stable element addresses and lock-free reads.
/// Chunk c holds (256 << c) elements, so 23 chunks cover ~2 billion ids
/// with no relocation ever. Append() may only be called under the owning
/// plane's writer lock; an element must be fully written before its id is
/// published to readers (via a release store or mutex release), after which
/// relaxed chunk-pointer loads are ordered by that publication.
template <typename T>
class ChunkedStore {
 public:
  static constexpr int kBaseBits = 8;
  static constexpr int kMaxChunks = 23;

  ChunkedStore() {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~ChunkedStore() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }
  ChunkedStore(const ChunkedStore&) = delete;
  ChunkedStore& operator=(const ChunkedStore&) = delete;

  T& operator[](int32_t id) { return Slot(id); }
  const T& operator[](int32_t id) const { return Slot(id); }

  /// Elements appended so far (writer-side view).
  int32_t size() const { return size_; }

  /// Appends a default-constructed element and returns its id; the caller
  /// fills it in place. Writer lock required.
  int32_t Append() {
    int32_t id = size_;
    int c = ChunkOf(id);
    if (chunks_[c].load(std::memory_order_relaxed) == nullptr) {
      chunks_[c].store(new T[ChunkCap(c)], std::memory_order_release);
    }
    ++size_;
    return id;
  }

 private:
  static int ChunkOf(int32_t id) {
    uint32_t q = (static_cast<uint32_t>(id) >> kBaseBits) + 1;
    return 31 - std::countl_zero(q);
  }
  static size_t ChunkCap(int c) { return size_t{1} << (kBaseBits + c); }
  static uint32_t ChunkBase(int c) { return ((1u << c) - 1) << kBaseBits; }

  T& Slot(int32_t id) const {
    int c = ChunkOf(id);
    return chunks_[c].load(std::memory_order_relaxed)[id - ChunkBase(c)];
  }

  mutable std::array<std::atomic<T*>, kMaxChunks> chunks_;
  int32_t size_ = 0;
};

}  // namespace internal

class TransitionPlane {
 public:
  using StateId = automata::StateId;

  /// A hash-consed evaluation configuration: the selecting states occupied
  /// at a node, which were entered by the label move itself (seeds), and the
  /// AFA states requested there -- plus everything the per-node hot paths
  /// need, precomputed at intern time. Immutable once published except the
  /// atomic lazy tables.
  struct Config {
    std::vector<StateId> mstates;  // sorted
    std::vector<char> seeds;       // aligned with mstates
    std::vector<StateId> freq;     // sorted
    bool any_annotated = false;
    bool dead = false;  // both sets empty: prune the subtree
    bool has_final = false;
    // Precomputed views of freq: final-state positions, and transition
    // states with their move labels PRE-BOUND to document label ids.
    struct FreqTrans {
      int idx;
      StateId target;
      LabelId tree_label;  // kNoLabel when the document never saw the label
      bool wildcard;
    };
    std::vector<int> finals;
    std::vector<FreqTrans> ftrans;
    // Same-node operator states in STRATIFIED sweep order (CompiledMfa
    // afa_rank): operands precede operators except across genuine Kleene
    // cycles, so a single ascending sweep reaches the fixpoint unless
    // needs_iteration is set (some operand shares an SCC with its operator).
    struct OpSpec {
      automata::AfaKind kind;
      int idx;
      int begin;
      int end;
    };
    std::vector<OpSpec> ops;
    std::vector<int> operand_pos;
    bool needs_iteration = false;
    // Annotated / final selecting states: (index into mstates, position of
    // the AFA entry in freq, -1 if pruned) / indices into mstates.
    std::vector<std::pair<int, int>> annotated;
    std::vector<int> final_mstates;
    // Intra-node ε-edges (i, j) within mstates, for cans wiring.
    std::vector<std::pair<int32_t, int32_t>> eps_pairs;

    /// Simple = no AFA requests, nothing annotated: outside a region the
    /// engine's whole per-node behavior is determined by the config id.
    bool IsSimple() const { return freq.empty() && !any_annotated; }

    // ---- lazy transition tables (see the design note) ----
    // Without an index: one packed (config, aux) atomic per tree label;
    // kEmptySlot until computed.
    std::unique_ptr<std::atomic<uint64_t>[]> next;
    // With an index: per tree label, a lock-free prepend-only list of
    // (label-set id, successor) nodes (distinct sets per (config, label)
    // are few, so a pointer walk beats hashing).
    struct EffNode {
      int32_t eff;
      SuccRef succ;
      EffNode* prev;
    };
    std::unique_ptr<std::atomic<EffNode*>[]> next_by_eff;
    // Relevant-label cache for jump mode (sorted; published by the flag).
    std::vector<LabelId> relevant;
    std::atomic<bool> relevant_ready{false};
  };

  /// Precomputed per-transition edge data: cans label edges (i in parent
  /// mstates, j in child mstates) and fstates↑ fold pairs. Content-interned
  /// so compositions over barren chains converge to a handful of ids.
  struct TransAux {
    std::vector<std::pair<int32_t, int32_t>> label_edges;
    std::vector<std::pair<int32_t, int32_t>> fold_pairs;
  };

  /// `tree`, `mfa` and `index` (may be null) must outlive the plane.
  /// `compiled` may be null: the plane then builds its own CompiledMfa.
  TransitionPlane(const xml::Tree& tree, const automata::Mfa& mfa,
                  std::shared_ptr<const automata::CompiledMfa> compiled,
                  const SubtreeLabelIndex* index);

  // Lock-free: the id must have been obtained from this plane.
  const Config& config(int32_t id) const { return configs_[id]; }
  const TransAux& aux(int32_t id) const { return aux_[id]; }

  /// The memoized successor of `config` on an element with `tree_label`
  /// below a subtree label-set `eff_set` (0 without an index). Lock-free
  /// when already computed; otherwise computes under the writer lock and
  /// adds the number of configurations interned by the call to `*interned`
  /// (may be null).
  SuccRef Transition(int32_t config, LabelId tree_label, int32_t eff_set,
                     int64_t* interned);

  /// The context configuration at `context` (memoized per context node), or
  /// -1 when dead.
  int32_t ContextConfig(xml::NodeId context, int64_t* interned);

  /// Composition of two aux edge mappings (i,j)x(j,k) -> (i,k), memoized;
  /// -1 when the composition is empty. Shared-locked on the hit path.
  int32_t ComposeAux(int32_t a, int32_t b);

  /// The RELEVANT labels of a configuration in no-index mode: tree labels
  /// whose memoized transition leaves `config`. Probing warms the lazy
  /// transition row. Lock-free once derived.
  std::span<const LabelId> RelevantLabels(int32_t config, int64_t* interned);

  /// Total configurations interned so far (across all attributed runs).
  int64_t configs_interned() const {
    return total_interned_.load(std::memory_order_relaxed);
  }

  /// Approximate resident bytes of the interned state (configurations with
  /// their precomputed views and lazy transition rows, TransAux records,
  /// memo tables). Takes the writer lock briefly; intended for stats
  /// endpoints and benches, not hot paths.
  int64_t ApproxBytes() const;

  const automata::CompiledMfa& compiled() const { return *compiled_; }
  const SubtreeLabelIndex* index() const { return index_; }
  const xml::Tree& tree() const { return tree_; }

 private:
  struct Productive {
    std::vector<char> sel;
    std::vector<char> afa_cbt;
  };
  struct TreeEdge {
    LabelId label;  // document-side id (unbound labels are dropped)
    StateId to;
  };

  static constexpr uint64_t kEmptySlot = ~uint64_t{0};
  static uint64_t Pack(SuccRef s) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(s.aux)) << 32) |
           static_cast<uint32_t>(s.config);
  }
  static SuccRef Unpack(uint64_t v) {
    return {static_cast<int32_t>(v & 0xFFFFFFFFu),
            static_cast<int32_t>(v >> 32)};
  }

  std::span<const TreeEdge> EdgesOf(StateId s) const {
    return {edges_.data() + edge_begin_[s], edges_.data() + edge_begin_[s + 1]};
  }

  // All *Locked methods require the writer lock.
  SuccRef TransitionLocked(int32_t config, LabelId tree_label, int32_t eff_set,
                           int64_t* interned);
  SuccRef ComputeTransitionLocked(int32_t config, LabelId tree_label,
                                  int32_t eff_set);
  int32_t ContextConfigLocked(xml::NodeId context);
  int32_t InternConfigLocked();  // interns the tmp_* scratch triple
  int32_t InternAuxLocked(int32_t from, LabelId tree_label, int32_t to);
  int32_t InternAuxContentLocked(TransAux aux);
  const Productive& ProductiveForLocked(int32_t set_id);
  void RestrictToSeedReachableLocked(std::vector<StateId>* mstates,
                                     std::vector<char>* seeds);

  const xml::Tree& tree_;
  const automata::Mfa& mfa_;
  std::shared_ptr<const automata::CompiledMfa> compiled_;
  const SubtreeLabelIndex* index_;
  int32_t num_tree_labels_;

  // Document-side binding of the CompiledMfa, built once: labeled NFA moves
  // in tree-label space (CSR; unbound labels dropped -- they can never
  // match), and per-AFA-state bound move labels.
  std::vector<int32_t> edge_begin_;
  std::vector<TreeEdge> edges_;
  std::vector<LabelId> afa_tree_label_;

  // One writer at a time; hit paths are lock-free (atomics) or take a
  // shared lock (compose / root memos).
  mutable std::shared_mutex mu_;

  internal::ChunkedStore<Config> configs_;
  internal::ChunkedStore<TransAux> aux_;
  std::deque<Config::EffNode> eff_nodes_;  // stable node storage
  std::unordered_map<uint64_t, std::vector<int32_t>> config_buckets_;
  std::unordered_map<uint64_t, std::vector<int32_t>> aux_buckets_;
  std::unordered_map<uint64_t, int32_t> compose_memo_;
  std::unordered_map<xml::NodeId, int32_t> root_config_cache_;
  std::unordered_map<int32_t, Productive> productive_cache_;
  std::atomic<int64_t> total_interned_{0};

  // Intern scratch (writer lock held).
  std::vector<int64_t> nfa_mark_;
  std::vector<int64_t> nfa_mark2_;
  std::vector<int64_t> afa_mark_;
  int64_t nfa_epoch_ = 0;
  int64_t nfa_epoch2_ = 0;
  int64_t afa_epoch_ = 0;
  std::vector<std::pair<StateId, char>> tagged_;
  std::vector<StateId> reach_work_;
  std::vector<StateId> tmp_m_;
  std::vector<char> tmp_seeds_;
  std::vector<StateId> tmp_f_;
};

/// A per-document registry of transition planes, keyed by MFA identity. One
/// store is owned by each exec::QueryService (so successive batches and
/// evaluator-cache rebuilds stay warm) and by each ShardedBatchEvaluator
/// that was not handed one (so its probes, shard workers, and fallback share
/// planes among themselves). Thread-safe.
class TransitionPlaneStore {
 public:
  struct Options {
    /// Soft cap on retained planes: beyond it, the least recently used
    /// entries that no engine still references are dropped. 0 = unbounded
    /// (fine when the caller's MFA set is fixed, e.g. one evaluator).
    size_t capacity = 0;
  };

  /// `tree` and `index` must outlive the store; every plane it creates uses
  /// them. Engines fed from one store must evaluate over this same tree and
  /// index.
  TransitionPlaneStore(const xml::Tree& tree, const SubtreeLabelIndex* index,
                       Options options)
      : tree_(tree), index_(index), options_(options) {}
  TransitionPlaneStore(const xml::Tree& tree, const SubtreeLabelIndex* index)
      : TransitionPlaneStore(tree, index, Options{}) {}

  /// The shared plane for `mfa`, created on first use. `compiled` seeds the
  /// creation with an already-built CSR mirror (e.g. from the
  /// rewrite::RewriteCache); null lets the plane build its own. `keep_alive`
  /// pins the MFA's lifetime to the entry -- pass it whenever the MFA is
  /// refcounted and may die before the store does (the QueryService does;
  /// callers whose MFAs are guaranteed to outlive the store may omit it).
  std::shared_ptr<TransitionPlane> For(
      const automata::Mfa* mfa,
      std::shared_ptr<const automata::CompiledMfa> compiled = nullptr,
      std::shared_ptr<const automata::Mfa> keep_alive = nullptr);

  size_t size() const;
  const SubtreeLabelIndex* index() const { return index_; }

  /// Resident planes, lifetime evictions, and the aggregate interned
  /// footprint across resident planes. Walks every plane; cheap at serving
  /// scale but not free -- stats endpoints, not hot paths.
  PlaneStoreStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<TransitionPlane> plane;
    std::shared_ptr<const automata::Mfa> keep_alive;
    int64_t last_used = 0;
  };

  const xml::Tree& tree_;
  const SubtreeLabelIndex* index_;
  Options options_;
  mutable std::mutex mu_;
  int64_t clock_ = 0;
  int64_t evictions_ = 0;
  std::unordered_map<const automata::Mfa*, Entry> planes_;
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_TRANSITION_PLANE_H_
