#include "hype/transition_plane.h"

#include <algorithm>
#include <cassert>

#include "common/fault_injection.h"
#include "common/hashing.h"

namespace smoqe::hype {

using automata::AfaKind;
using automata::CompiledMfa;
using automata::kNoState;

namespace {

// Index of `id` in the sorted vector, or -1.
int IndexOf(const std::vector<automata::StateId>& sorted,
            automata::StateId id) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
  if (it == sorted.end() || *it != id) return -1;
  return static_cast<int>(it - sorted.begin());
}

}  // namespace

TransitionPlane::TransitionPlane(
    const xml::Tree& tree, const automata::Mfa& mfa,
    std::shared_ptr<const automata::CompiledMfa> compiled,
    const SubtreeLabelIndex* index)
    : tree_(tree),
      mfa_(mfa),
      compiled_(compiled != nullptr
                    ? std::move(compiled)
                    : std::make_shared<const automata::CompiledMfa>(
                          automata::CompiledMfa::Build(mfa))),
      index_(index),
      num_tree_labels_(static_cast<int32_t>(tree.labels().size())) {
  const CompiledMfa& cm = *compiled_;
  // Bind MFA labels to the document's label table once; unbound labeled
  // moves can never match an element and are dropped from the CSR.
  std::vector<LabelId> binding(mfa_.labels.size());
  for (LabelId l = 0; l < mfa_.labels.size(); ++l) {
    binding[l] = tree_.labels().Lookup(mfa_.labels.name(l));
  }
  const int n = cm.num_nfa_states();
  edge_begin_.assign(n + 1, 0);
  for (StateId s = 0; s < n; ++s) {
    edge_begin_[s + 1] = edge_begin_[s];
    for (const CompiledMfa::Edge& e : cm.TransOf(s)) {
      if (e.label == kNoLabel) continue;
      LabelId t = binding[e.label];
      if (t == kNoLabel) continue;
      edges_.push_back({t, e.to});
      ++edge_begin_[s + 1];
    }
  }
  const int m = cm.num_afa_states();
  afa_tree_label_.assign(m, kNoLabel);
  for (StateId s = 0; s < m; ++s) {
    if (cm.afa_kind[s] == AfaKind::kTrans && cm.afa_label[s] != kNoLabel) {
      afa_tree_label_[s] = binding[cm.afa_label[s]];
    }
  }
  nfa_mark_.assign(n, 0);
  nfa_mark2_.assign(n, 0);
  afa_mark_.assign(m, 0);
}

// After index-based filtering, drop every state no longer ε-reachable from a
// surviving seed (see the engine-era comment: states hiding behind a pruned
// annotated guard must disappear with it).
void TransitionPlane::RestrictToSeedReachableLocked(
    std::vector<StateId>* mstates, std::vector<char>* seeds) {
  const CompiledMfa& cm = *compiled_;
  int64_t member = ++nfa_epoch_;
  for (StateId s : *mstates) nfa_mark_[s] = member;
  int64_t reach = ++nfa_epoch2_;
  reach_work_.clear();
  for (size_t i = 0; i < mstates->size(); ++i) {
    if ((*seeds)[i]) {
      nfa_mark2_[(*mstates)[i]] = reach;
      reach_work_.push_back((*mstates)[i]);
    }
  }
  for (size_t i = 0; i < reach_work_.size(); ++i) {
    for (StateId e : cm.EpsOf(reach_work_[i])) {
      if (nfa_mark_[e] == member && nfa_mark2_[e] != reach) {
        nfa_mark2_[e] = reach;
        reach_work_.push_back(e);
      }
    }
  }
  size_t w = 0;
  for (size_t i = 0; i < mstates->size(); ++i) {
    if (nfa_mark2_[(*mstates)[i]] == reach) {
      (*mstates)[w] = (*mstates)[i];
      (*seeds)[w] = (*seeds)[i];
      ++w;
    }
  }
  mstates->resize(w);
  seeds->resize(w);
}

const TransitionPlane::Productive& TransitionPlane::ProductiveForLocked(
    int32_t set_id) {
  auto it = productive_cache_.find(set_id);
  if (it != productive_cache_.end()) return it->second;

  const CompiledMfa& cm = *compiled_;
  const SubtreeLabelIndex& index = *index_;
  auto label_available = [&](LabelId tree_label, bool wildcard) {
    if (wildcard) return !index.IsEmpty(set_id);
    return tree_label != kNoLabel && index.Contains(set_id, tree_label);
  };

  Productive prod;
  // CanBeTrue over AFA states: least fixpoint of a monotone system (NOT is
  // conservatively "can be true": its operand may be false below).
  const int m = cm.num_afa_states();
  prod.afa_cbt.assign(m, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < m; ++s) {
      if (prod.afa_cbt[s]) continue;
      bool v = false;
      switch (cm.afa_kind[s]) {
        case AfaKind::kFinal:
        case AfaKind::kNot:
          v = true;
          break;
        case AfaKind::kTrans:
          v = label_available(afa_tree_label_[s], cm.afa_wild[s] != 0) &&
              prod.afa_cbt[cm.afa_target[s]];
          break;
        case AfaKind::kOr:
          for (StateId o : cm.OperandsOf(s)) v = v || prod.afa_cbt[o];
          break;
        case AfaKind::kAnd:
          v = true;
          for (StateId o : cm.OperandsOf(s)) v = v && prod.afa_cbt[o];
          break;
      }
      if (v) {
        prod.afa_cbt[s] = 1;
        changed = true;
      }
    }
  }

  // Selecting-state productivity: can reach a final state using available
  // labels, through states whose annotations can still be true.
  const int n = cm.num_nfa_states();
  prod.sel.assign(n, 0);
  auto valid = [&](StateId s) {
    StateId e = cm.afa_entry[s];
    return e == kNoState || prod.afa_cbt[e];
  };
  changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (prod.sel[s] || !valid(s)) continue;
      bool v = cm.IsNfaFinal(s);
      for (const TreeEdge& t : EdgesOf(s)) {
        if (v) break;
        v = label_available(t.label, false) && prod.sel[t.to];
      }
      for (StateId t : cm.WildOf(s)) {
        if (v) break;
        v = label_available(kNoLabel, true) && prod.sel[t];
      }
      for (StateId e : cm.EpsOf(s)) {
        if (v) break;
        v = prod.sel[e] != 0;
      }
      if (v) {
        prod.sel[s] = 1;
        changed = true;
      }
    }
  }
  return productive_cache_.emplace(set_id, std::move(prod)).first->second;
}

// Interns the configuration currently held in tmp_m_ / tmp_seeds_ / tmp_f_.
// Everything the per-node hot paths need is precomputed here; the ops sweep
// is laid out in the CompiledMfa's stratified order.
int32_t TransitionPlane::InternConfigLocked() {
  uint64_t h = HashCombine(tmp_m_.size(), tmp_f_.size());
  for (StateId s : tmp_m_) h = HashCombine(h, static_cast<uint64_t>(s));
  for (char c : tmp_seeds_) h = HashCombine(h, static_cast<uint64_t>(c));
  for (StateId s : tmp_f_) h = HashCombine(h, static_cast<uint64_t>(s));
  std::vector<int32_t>& bucket = config_buckets_[h];
  for (int32_t id : bucket) {
    const Config& c = configs_[id];
    if (c.mstates == tmp_m_ && c.seeds == tmp_seeds_ && c.freq == tmp_f_) {
      return id;
    }
  }
  const CompiledMfa& cm = *compiled_;
  int32_t id = configs_.Append();
  Config& config = configs_[id];
  config.mstates = tmp_m_;
  config.seeds = tmp_seeds_;
  config.freq = tmp_f_;
  config.dead = tmp_m_.empty() && tmp_f_.empty();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    StateId s = tmp_m_[i];
    if (cm.afa_entry[s] != kNoState) {
      config.any_annotated = true;
      config.annotated.push_back(
          {static_cast<int>(i), IndexOf(tmp_f_, cm.afa_entry[s])});
    }
    if (cm.IsNfaFinal(s)) {
      config.has_final = true;
      config.final_mstates.push_back(static_cast<int>(i));
    }
    for (StateId e : cm.EpsOf(s)) {
      int j = IndexOf(tmp_m_, e);
      if (j >= 0) config.eps_pairs.push_back({static_cast<int32_t>(i), j});
    }
  }
  // Operator states first collected in freq order, then swept in stratified
  // rank order: operands precede operators except inside one SCC, where the
  // fixpoint loop takes over (needs_iteration).
  std::vector<int> op_order;
  for (size_t j = 0; j < tmp_f_.size(); ++j) {
    StateId u = tmp_f_[j];
    switch (cm.afa_kind[u]) {
      case AfaKind::kFinal:
        config.finals.push_back(static_cast<int>(j));
        break;
      case AfaKind::kTrans:
        config.ftrans.push_back({static_cast<int>(j), cm.afa_target[u],
                                 afa_tree_label_[u], cm.afa_wild[u] != 0});
        break;
      default:
        op_order.push_back(static_cast<int>(j));
        break;
    }
  }
  std::sort(op_order.begin(), op_order.end(), [&](int a, int b) {
    return cm.afa_rank[tmp_f_[a]] < cm.afa_rank[tmp_f_[b]];
  });
  for (int j : op_order) {
    StateId u = tmp_f_[j];
    Config::OpSpec op;
    op.kind = cm.afa_kind[u];
    op.idx = j;
    op.begin = static_cast<int>(config.operand_pos.size());
    for (StateId o : cm.OperandsOf(u)) {
      config.operand_pos.push_back(IndexOf(tmp_f_, o));
      if (config.operand_pos.back() >= 0 && cm.afa_scc[o] == cm.afa_scc[u]) {
        config.needs_iteration = true;
      }
    }
    op.end = static_cast<int>(config.operand_pos.size());
    config.ops.push_back(op);
  }
  // Lazy tables, allocated eagerly so readers never observe a null row.
  if (index_ == nullptr) {
    config.next = std::make_unique<std::atomic<uint64_t>[]>(num_tree_labels_);
    for (int32_t l = 0; l < num_tree_labels_; ++l) {
      config.next[l].store(kEmptySlot, std::memory_order_relaxed);
    }
  } else {
    config.next_by_eff =
        std::make_unique<std::atomic<Config::EffNode*>[]>(num_tree_labels_);
    for (int32_t l = 0; l < num_tree_labels_; ++l) {
      config.next_by_eff[l].store(nullptr, std::memory_order_relaxed);
    }
  }
  bucket.push_back(id);
  total_interned_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Precomputes the parent→child edge data of one memoized transition (cans
// label edges + fstates↑ fold pairs); -1 when both are empty. When the child
// configuration has no annotated states its label edges are emitted ε-CLOSED
// (see the engine design note): connectivity through barren nodes needs no
// per-node ε materialization.
int32_t TransitionPlane::InternAuxLocked(int32_t from, LabelId tree_label,
                                         int32_t to) {
  const Config& p = configs_[from];
  const Config& c = configs_[to];
  const CompiledMfa& cm = *compiled_;
  TransAux aux;
  std::vector<std::vector<int32_t>> adj;
  std::vector<char> reach;
  std::vector<int32_t> work;
  if (!c.any_annotated && !c.eps_pairs.empty()) {
    adj.resize(c.mstates.size());
    for (auto [i, j] : c.eps_pairs) adj[i].push_back(j);
  }
  for (size_t i = 0; i < p.mstates.size(); ++i) {
    reach.assign(c.mstates.size(), 0);
    auto add_target = [&](StateId to_state) {
      int j = IndexOf(c.mstates, to_state);
      if (j < 0 || reach[j]) return;
      reach[j] = 1;
      aux.label_edges.push_back({static_cast<int32_t>(i), j});
      if (!adj.empty()) {
        work.assign(1, j);
        while (!work.empty()) {
          int32_t v = work.back();
          work.pop_back();
          for (int32_t e : adj[v]) {
            if (!reach[e]) {
              reach[e] = 1;
              aux.label_edges.push_back({static_cast<int32_t>(i), e});
              work.push_back(e);
            }
          }
        }
      }
    };
    for (const TreeEdge& t : EdgesOf(p.mstates[i])) {
      if (t.label == tree_label) add_target(t.to);
    }
    for (StateId t : cm.WildOf(p.mstates[i])) add_target(t);
  }
  for (const Config::FreqTrans& ft : p.ftrans) {
    if (!ft.wildcard && ft.tree_label != tree_label) continue;
    int k = IndexOf(c.freq, ft.target);
    if (k >= 0) aux.fold_pairs.push_back({ft.idx, k});
  }
  if (aux.label_edges.empty() && aux.fold_pairs.empty()) return -1;
  return InternAuxContentLocked(std::move(aux));
}

int32_t TransitionPlane::InternAuxContentLocked(TransAux aux) {
  uint64_t h = HashCombine(aux.label_edges.size(), aux.fold_pairs.size());
  for (auto [i, j] : aux.label_edges) {
    h = HashCombine(h, (static_cast<uint64_t>(i) << 32) |
                           static_cast<uint32_t>(j));
  }
  for (auto [i, j] : aux.fold_pairs) {
    h = HashCombine(h, ~((static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j)));
  }
  std::vector<int32_t>& bucket = aux_buckets_[h];
  for (int32_t id : bucket) {
    if (aux_[id].label_edges == aux.label_edges &&
        aux_[id].fold_pairs == aux.fold_pairs) {
      return id;
    }
  }
  int32_t id = aux_.Append();
  aux_[id] = std::move(aux);
  bucket.push_back(id);
  return id;
}

int32_t TransitionPlane::ComposeAux(int32_t a, int32_t b) {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                 static_cast<uint32_t>(b);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = compose_memo_.find(key);
    if (it != compose_memo_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = compose_memo_.find(key);
  if (it != compose_memo_.end()) return it->second;

  const std::vector<std::pair<int32_t, int32_t>>& ab = aux_[a].label_edges;
  const std::vector<std::pair<int32_t, int32_t>>& bc = aux_[b].label_edges;
  // Small relational join: map ab through bc, deduplicating pairs.
  TransAux out;
  for (auto [i, j] : ab) {
    for (auto [j2, k] : bc) {
      if (j2 != j) continue;
      bool dup = false;
      for (auto [oi, ok] : out.label_edges) {
        if (oi == i && ok == k) {
          dup = true;
          break;
        }
      }
      if (!dup) out.label_edges.push_back({i, k});
    }
  }
  int32_t id =
      out.label_edges.empty() ? -1 : InternAuxContentLocked(std::move(out));
  compose_memo_.emplace(key, id);
  return id;
}

SuccRef TransitionPlane::ComputeTransitionLocked(
    int32_t config, LabelId tree_label, int32_t eff_set) {
  const Config& cur = configs_[config];
  const CompiledMfa& cm = *compiled_;

  // NextNFAStates: label move, then ε-closure; move targets are seeds. The
  // closure is a union of precomputed per-state closures instead of a BFS.
  tmp_m_.clear();
  int64_t epoch = ++nfa_epoch_;
  auto mark_push = [&](StateId t) {
    if (nfa_mark_[t] != epoch) {
      nfa_mark_[t] = epoch;
      tmp_m_.push_back(t);
    }
  };
  for (StateId s : cur.mstates) {
    for (const TreeEdge& t : EdgesOf(s)) {
      if (t.label == tree_label) mark_push(t.to);
    }
    for (StateId t : cm.WildOf(s)) mark_push(t);
  }
  const size_t num_seeds = tmp_m_.size();
  for (size_t i = 0; i < num_seeds; ++i) {
    for (StateId c : cm.ClosureOf(tmp_m_[i])) mark_push(c);
  }
  tagged_.clear();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    tagged_.push_back({tmp_m_[i], i < num_seeds ? char{1} : char{0}});
  }
  std::sort(tagged_.begin(), tagged_.end());
  tmp_seeds_.resize(tagged_.size());
  for (size_t i = 0; i < tagged_.size(); ++i) {
    tmp_m_[i] = tagged_[i].first;
    tmp_seeds_[i] = tagged_[i].second;
  }

  // NextAFAStates: transition moves, newly activated annotations, operator
  // closure.
  tmp_f_.clear();
  int64_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (const Config::FreqTrans& ft : cur.ftrans) {
    if (ft.wildcard || ft.tree_label == tree_label) add(ft.target);
  }
  for (StateId s : tmp_m_) {
    if (cm.afa_entry[s] != kNoState) add(cm.afa_entry[s]);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : cm.OperandsOf(tmp_f_[i])) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  if (index_ != nullptr) {
    const Productive& prod = ProductiveForLocked(eff_set);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachableLocked(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }
  SuccRef succ;
  succ.config = InternConfigLocked();
  succ.aux = InternAuxLocked(config, tree_label, succ.config);
  return succ;
}

SuccRef TransitionPlane::TransitionLocked(int32_t config,
                                                           LabelId tree_label,
                                                           int32_t eff_set,
                                                           int64_t* interned) {
  Config& cur = configs_[config];
  if (index_ == nullptr) {
    uint64_t v = cur.next[tree_label].load(std::memory_order_relaxed);
    if (v != kEmptySlot) return Unpack(v);
    int64_t before = total_interned_.load(std::memory_order_relaxed);
    SuccRef succ = ComputeTransitionLocked(config, tree_label, eff_set);
    if (interned != nullptr) {
      *interned += total_interned_.load(std::memory_order_relaxed) - before;
    }
    cur.next[tree_label].store(Pack(succ), std::memory_order_release);
    return succ;
  }
  for (Config::EffNode* n =
           cur.next_by_eff[tree_label].load(std::memory_order_relaxed);
       n != nullptr; n = n->prev) {
    if (n->eff == eff_set) return n->succ;
  }
  int64_t before = total_interned_.load(std::memory_order_relaxed);
  SuccRef succ = ComputeTransitionLocked(config, tree_label, eff_set);
  if (interned != nullptr) {
    *interned += total_interned_.load(std::memory_order_relaxed) - before;
  }
  // `cur` stays valid across the compute: chunked slots never move.
  eff_nodes_.push_back(
      {eff_set, succ,
       cur.next_by_eff[tree_label].load(std::memory_order_relaxed)});
  cur.next_by_eff[tree_label].store(&eff_nodes_.back(),
                                    std::memory_order_release);
  return succ;
}

SuccRef TransitionPlane::Transition(int32_t config,
                                                     LabelId tree_label,
                                                     int32_t eff_set,
                                                     int64_t* interned) {
  Config& cur = configs_[config];
  if (index_ == nullptr) {
    uint64_t v = cur.next[tree_label].load(std::memory_order_acquire);
    if (v != kEmptySlot) return Unpack(v);
  } else {
    for (Config::EffNode* n =
             cur.next_by_eff[tree_label].load(std::memory_order_acquire);
         n != nullptr; n = n->prev) {
      if (n->eff == eff_set) return n->succ;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Delay-only site: stretches the writer-lock hold time on the cold
  // interning path so the chaos suite exercises readers blocked behind a
  // slow intern (errors here would poison the shared per-query plane, so
  // injected error statuses are dropped by construction).
  SMOQE_FAULT_DELAY_POINT(FaultSite::kPlaneIntern);
  return TransitionLocked(config, tree_label, eff_set, interned);
}

int32_t TransitionPlane::ContextConfigLocked(xml::NodeId context) {
  const CompiledMfa& cm = *compiled_;
  // ε-closure of the start state; the start state itself is the only
  // unconditional entry point.
  tmp_m_.assign(cm.ClosureOf(mfa_.start).begin(),
                cm.ClosureOf(mfa_.start).end());
  tmp_seeds_.assign(tmp_m_.size(), 0);
  int si = IndexOf(tmp_m_, mfa_.start);
  if (si >= 0) tmp_seeds_[si] = 1;

  tmp_f_.clear();
  int64_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (StateId s : tmp_m_) {
    if (cm.afa_entry[s] != kNoState) add(cm.afa_entry[s]);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : cm.OperandsOf(tmp_f_[i])) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  if (index_ != nullptr) {
    int32_t eff = index_->SetForContext(tree_, context);
    const Productive& prod = ProductiveForLocked(eff);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachableLocked(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }

  int32_t root_config = InternConfigLocked();
  return configs_[root_config].dead ? -1 : root_config;
}

int32_t TransitionPlane::ContextConfig(xml::NodeId context,
                                       int64_t* interned) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = root_config_cache_.find(context);
    if (it != root_config_cache_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = root_config_cache_.find(context);
  if (it != root_config_cache_.end()) return it->second;
  int64_t before = total_interned_.load(std::memory_order_relaxed);
  int32_t result = ContextConfigLocked(context);
  if (interned != nullptr) {
    *interned += total_interned_.load(std::memory_order_relaxed) - before;
  }
  root_config_cache_.emplace(context, result);
  return result;
}

std::span<const LabelId> TransitionPlane::RelevantLabels(int32_t config,
                                                         int64_t* interned) {
  Config& cur = configs_[config];
  if (cur.relevant_ready.load(std::memory_order_acquire)) return cur.relevant;
  assert(index_ == nullptr &&
         "relevant labels are only well-defined without an index");
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (cur.relevant_ready.load(std::memory_order_relaxed)) return cur.relevant;
  std::vector<LabelId> relevant;
  for (LabelId l = 0; l < num_tree_labels_; ++l) {
    if (TransitionLocked(config, l, 0, interned).config != config) {
      relevant.push_back(l);
    }
  }
  cur.relevant = std::move(relevant);
  cur.relevant_ready.store(true, std::memory_order_release);
  return cur.relevant;
}

int64_t TransitionPlane::ApproxBytes() const {
  // Exclusive rather than shared: size_ and the vectors below are written
  // under the exclusive lock, and this path is cold.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto vec_bytes = [](const auto& v) {
    return static_cast<int64_t>(v.capacity() * sizeof(v[0]));
  };
  int64_t bytes = 0;
  const int32_t num_configs = configs_.size();
  for (int32_t id = 0; id < num_configs; ++id) {
    const Config& c = configs_[id];
    bytes += sizeof(Config);
    bytes += vec_bytes(c.mstates) + vec_bytes(c.seeds) + vec_bytes(c.freq) +
             vec_bytes(c.finals) + vec_bytes(c.ftrans) + vec_bytes(c.ops) +
             vec_bytes(c.operand_pos) + vec_bytes(c.annotated) +
             vec_bytes(c.final_mstates) + vec_bytes(c.eps_pairs) +
             vec_bytes(c.relevant);
    if (c.next != nullptr) {
      bytes += int64_t{num_tree_labels_} * sizeof(std::atomic<uint64_t>);
    }
    if (c.next_by_eff != nullptr) {
      bytes += int64_t{num_tree_labels_} * sizeof(std::atomic<Config::EffNode*>);
    }
  }
  const int32_t num_aux = aux_.size();
  for (int32_t id = 0; id < num_aux; ++id) {
    const TransAux& a = aux_[id];
    bytes +=
        sizeof(TransAux) + vec_bytes(a.label_edges) + vec_bytes(a.fold_pairs);
  }
  bytes += static_cast<int64_t>(eff_nodes_.size() * sizeof(Config::EffNode));
  // Hash-table overhead, counted coarsely per entry.
  bytes += static_cast<int64_t>(
      (config_buckets_.size() + aux_buckets_.size()) * 48 +
      (compose_memo_.size() + root_config_cache_.size()) * 24);
  return bytes;
}

std::shared_ptr<TransitionPlane> TransitionPlaneStore::For(
    const automata::Mfa* mfa,
    std::shared_ptr<const automata::CompiledMfa> compiled,
    std::shared_ptr<const automata::Mfa> keep_alive) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = planes_[mfa];
  entry.last_used = ++clock_;
  if (entry.keep_alive == nullptr) entry.keep_alive = std::move(keep_alive);
  if (entry.plane == nullptr) {
    entry.plane = std::make_shared<TransitionPlane>(
        tree_, *mfa, std::move(compiled), index_);
    // Soft-evict beyond capacity: only planes no engine references anymore
    // (use_count 1 = ours, and nobody can acquire a copy without this
    // mutex), least recently used first. In-use planes are never dropped,
    // so the cap bounds retained memory, not correctness.
    while (options_.capacity > 0 && planes_.size() > options_.capacity) {
      auto victim = planes_.end();
      for (auto it = planes_.begin(); it != planes_.end(); ++it) {
        if (it->first == mfa || it->second.plane.use_count() != 1) continue;
        if (victim == planes_.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == planes_.end()) break;  // everything is in use
      planes_.erase(victim);
      ++evictions_;
    }
  }
  return entry.plane;
}

size_t TransitionPlaneStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return planes_.size();
}

PlaneStoreStats TransitionPlaneStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlaneStoreStats out;
  out.planes = static_cast<int64_t>(planes_.size());
  out.evictions = evictions_;
  for (const auto& [mfa, entry] : planes_) {
    out.configs_interned += entry.plane->configs_interned();
    out.approx_bytes += entry.plane->ApproxBytes();
  }
  return out;
}

}  // namespace smoqe::hype
