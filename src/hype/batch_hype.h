// Batched multi-query HyPE: evaluate N MFAs over one tree in a SINGLE shared
// depth-first pass.
//
// A view server answering many queries against the same materialized view
// pays one full HyPE pass per query; the traversal (node decoding, child
// iteration, subtree-label-index lookups) is repeated N times even though it
// is query-independent. BatchHypeEvaluator keeps one HypeEngine per query
// and walks the tree once for all of them.
//
// The sharing goes beyond the walk: the driver interns the TUPLE of
// per-engine configurations occupied at a node -- a joint state -- and
// memoizes joint transitions per (joint state, label[, subtree label set]),
// the determinization idea HyPE already applies per query (Green et al.),
// lifted across the batch. One packed table entry then advances every query
// at once and tells the driver:
//   - whether EVERY engine prunes the child (skip the whole subtree);
//   - which engines descend with frames (filters pending / inside a cans
//     region): they run their normal per-node prologue/epilogue -- the rare
//     case, held in a side table the action-free hot path never touches;
//   - which engines are in a "simple" state (no AFA requests, nothing
//     annotated): they ride the joint table framelessly with NO per-node
//     work -- their answers (final states) and visit statistics are
//     recovered from the joint states themselves. An action-free LEAF child
//     is entered and accounted without a frame push/pop at all.
//
// Each engine's per-query derived state (configurations, transition tables)
// lives in its hype::TransitionPlane; hand the evaluator a
// TransitionPlaneStore to share those planes with other evaluators of the
// same queries (shard workers, the probe pass, later service batches) --
// see transition_plane.h. The joint tables themselves are evaluator-local
// (they index the batch's engine slots).
//
// The walk itself iterates a columnar xml::DocPlane (preorder arrays with
// subtree extents, see the design note in xml/doc_plane.h): descending is a
// cursor read, skipping a pruned subtree a cursor addition. On top of the
// plane the driver gains a JUMP MODE (no-index passes only): a joint state
// whose members are ALL frameless and final-free derives, once, the union of
// its members' relevant labels (HypeEngine::RelevantLabels -- labels whose
// transition leaves the member's configuration). Every other position is
// TRANSPARENT for the whole batch: each member self-loops through it, so the
// joint state -- and therefore every joint decision -- is unchanged, no
// answer is emitted, and nothing prunes. The driver therefore lower_bounds
// the posting lists of the relevant labels and leaps straight to the next
// candidate position inside the frame's extent; because the joint state at
// the candidate's (transparent) parent provably equals the frame's state,
// the candidate is entered through the ordinary memoized joint edge, and no
// ancestor replay is needed at all -- frameless engines keep no frames to
// reconstruct. Skipped positions are accounted to the state's `jumped`
// counter and folded into the members' visit statistics exactly like
// `visits`, keeping per-engine statistics bit-identical to solo runs (the
// randomized suite in tests/doc_plane_test.cc pins jump ≡ full-DFS ≡ solo).
//
// Per-query answers and statistics are identical to running HypeEvaluator
// separately by construction; the randomized equivalence suite
// (tests/batch_hype_test.cc) enforces this across batch sizes and index
// modes.
//
// The evaluator is reusable: repeated EvalAll calls keep the joint tables
// and each engine's transition plane warm.

#ifndef SMOQE_HYPE_BATCH_HYPE_H_
#define SMOQE_HYPE_BATCH_HYPE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "automata/mfa.h"
#include "hype/engine.h"
#include "hype/index.h"
#include "hype/transition_plane.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::hype {

struct BatchHypeOptions {
  /// When set, enables index-based pruning for every query in the batch; the
  /// index lookup per node is shared across queries. Must have been built
  /// for the same tree.
  const SubtreeLabelIndex* index = nullptr;

  /// Columnar plane of the same tree (borrowed, shared read-only). Built
  /// and owned by the evaluator when null; callers that hold many
  /// evaluators over one tree (exec::ShardedBatchEvaluator, the service)
  /// pass a shared plane to avoid per-evaluator rebuilds.
  const xml::DocPlane* plane = nullptr;

  /// Shared registry of per-query transition planes (see
  /// transition_plane.h); must have been created for the same tree and
  /// index. Null = each engine keeps a private plane (the pre-plane
  /// behavior). exec::ShardedBatchEvaluator hands every worker one store so
  /// all shards intern each configuration once.
  TransitionPlaneStore* plane_store = nullptr;

  /// Allows the joint driver's jump mode (see the design note above). Off
  /// forces the full columnar DFS; answers and per-engine statistics are
  /// identical either way.
  bool enable_jump = true;
};

class BatchHypeEvaluator {
 public:
  /// The MFAs must outlive the evaluator. They may repeat (each slot still
  /// gets its own engine; with a plane store, repeated slots share one
  /// transition plane).
  BatchHypeEvaluator(const xml::Tree& tree,
                     std::vector<const automata::Mfa*> mfas,
                     BatchHypeOptions options = {});

  /// Evaluates every MFA at `context` in one shared pass; result i is the
  /// sorted answer set of mfas[i] (== HypeEvaluator(tree, *mfas[i]).Eval).
  ///
  /// `gate` (optional, here and in EvalSubtree) is polled once per walk step;
  /// when it trips, the pass aborts within one checkpoint interval of node
  /// entries and returns all-empty answers with `gate->tripped()` set. The
  /// evaluator stays reusable (joint tables stay warm, the next pass resets
  /// every engine), but the aborted call's answers/statistics are garbage by
  /// contract and must be discarded.
  std::vector<std::vector<xml::NodeId>> EvalAll(xml::NodeId context,
                                                EvalGate* gate = nullptr);

  /// Shard entry point: evaluates every MFA over the subtree rooted at `top`
  /// only, with each engine entering `top` in the configuration its solo
  /// pass from `context` would hold there (the memoized transition chain
  /// along the context→top path; engines dead anywhere on the path
  /// contribute no answers, exactly like the solo prune).
  ///
  /// Result i is the solo answer set of mfas[i] RESTRICTED to the subtree of
  /// `top` -- provided every configuration on the path strictly above `top`
  /// is "simple" for that engine (no pending AFA requests, nothing
  /// annotated), so no filter truth or cans connectivity crosses the subtree
  /// boundary. Callers (exec::ShardedBatchEvaluator) must check this via the
  /// engine hooks and route non-simple queries to a whole-tree pass; answers
  /// AT path nodes above `top` are likewise the caller's to emit.
  /// EvalSubtree(c, c) == EvalAll(c).
  std::vector<std::vector<xml::NodeId>> EvalSubtree(xml::NodeId context,
                                                    xml::NodeId top,
                                                    EvalGate* gate = nullptr);

  size_t batch_size() const { return engines_.size(); }

  /// Per-query statistics of the last EvalAll (identical to what the solo
  /// evaluator would report; configs_interned attributes shared-plane
  /// insertions, see engine.h).
  const EvalStats& stats(size_t i) const { return engines_[i]->stats(); }

  /// Shared-walk statistics of the last EvalAll. nodes_walked counts element
  /// nodes entered once by the shared pass -- the per-query passes would
  /// have entered sum_i stats(i).elements_visited nodes in total.
  const SharedPassStats& pass_stats() const { return pass_stats_; }

  /// Joint states interned so far (sharing diagnostics).
  size_t num_joint_states() const { return states_.size(); }

 private:
  using SuccRef = HypeEngine::SuccRef;

  struct Member {
    uint32_t engine;
    int32_t config;
    bool framed;  // monotone along a path: set at the first non-simple config
  };
  // A memoized joint transition is PACKED into one int64: the target joint
  // state (high half; -1 = every engine prunes) and an index into the
  // actions_ side table (low half; -1 = no per-engine frame work -- the
  // common navigation case decodes one table entry and touches nothing
  // else).
  struct JointAction {
    std::vector<std::pair<uint32_t, SuccRef>> descend;  // framed at parent
    std::vector<std::pair<uint32_t, int32_t>> begin;    // newly framed
  };
  static constexpr int64_t kEdgeUnset = INT64_MIN;
  static int64_t PackEdge(int32_t next, int32_t action) {
    return static_cast<int64_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(next)) << 32) |
        static_cast<uint32_t>(action));
  }
  static int32_t EdgeNext(int64_t packed) {
    return static_cast<int32_t>(static_cast<uint64_t>(packed) >> 32);
  }
  static int32_t EdgeAction(int64_t packed) {
    return static_cast<int32_t>(static_cast<uint64_t>(packed) & 0xFFFFFFFFu);
  }

  struct JointState {
    std::vector<Member> members;
    std::vector<uint32_t> framed;            // engines to ExitNode at pop
    std::vector<uint32_t> frameless_finals;  // engines emitting `node` direct
    int64_t visits = 0;                      // this pass; distributed after
    int64_t jumped = 0;  // transparent positions skipped under this state
    // Joint transition memo, mirroring the per-engine tables: one packed
    // slot per tree label, or per (label, subtree-label-set) with an index.
    std::vector<int64_t> edges;
    std::vector<std::vector<std::pair<int32_t, int64_t>>> edges_by_eff;
    // Jump plan (no-index passes): jumpable iff every member is frameless
    // and final-free; `jump_labels` is then the sorted union of the
    // members' relevant labels. Derived lazily at first frame use.
    bool jump_ready = false;
    bool jumpable = false;
    std::vector<LabelId> jump_labels;
  };

  struct WalkFrame {
    int32_t pos;     // plane position of this node
    int32_t end;     // one past the last descendant position
    int32_t cursor;  // next position to consider inside (pos, end)
    int32_t eff_set;
    int32_t joint;
    JointState* st;  // states_[joint], cached for the per-child hot path
    bool jump;       // posting-driven scan for this frame
  };

  int32_t InternState(std::vector<Member> members);
  int64_t EdgeFor(JointState& st, int32_t state, LabelId label,
                  int32_t eff_set);
  int64_t ComputeEdge(int32_t state, LabelId label, int32_t eff_set);
  bool JumpPlanFor(int32_t state);
  void RunJointPass(xml::NodeId top, int32_t top_eff, int32_t root_state,
                    EvalGate* gate);

  const xml::Tree& tree_;
  BatchHypeOptions options_;
  xml::DocPlane plane_owned_;  // empty when options.plane was provided
  const xml::DocPlane* plane_;
  std::vector<std::unique_ptr<HypeEngine>> engines_;
  SharedPassStats pass_stats_;

  std::vector<std::unique_ptr<JointState>> states_;
  std::unordered_map<uint64_t, std::vector<int32_t>> state_buckets_;
  std::vector<JointAction> actions_;
  std::vector<WalkFrame> walk_stack_;      // reused across EvalAll calls
  std::vector<int32_t> touched_states_;    // states entered by the current pass
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_BATCH_HYPE_H_
