// The cans ("candidate answers") DAG of Algorithm HyPE (Section 6).
//
// During HyPE's single top-down pass, every (tree node, NFA state) pair the
// run touches becomes a vertex; NFA transitions become edges (ε-edges stay
// within one tree node, label edges cross to a child). When an annotated
// state's AFA evaluates to false at a node, that vertex is deleted,
// disconnecting every candidate answer that depended on the failed filter.
// Phase two is a single traversal from the initial vertices: answers are the
// ν-annotations of reachable, surviving final-state vertices.
//
// Phase two is answer-driven: initial and answer vertices are recorded as
// they appear, so a run without deletions skips the reachability walk
// entirely (every recorded vertex is reachable by construction -- it was
// created by an actual run prefix), and a run with deletions walks with
// reusable epoch-marked scratch instead of per-call allocations.

#ifndef SMOQE_HYPE_CANS_H_
#define SMOQE_HYPE_CANS_H_

#include <cstdint>
#include <vector>

#include "automata/mfa.h"
#include "xml/tree.h"

namespace smoqe::hype {

class CansGraph {
 public:
  using VertexId = int32_t;

  /// Clears the graph for a fresh run, keeping the allocated capacity (the
  /// evaluators reuse one graph across Eval calls).
  void Reset() {
    vertices_.clear();
    edges_.clear();
    initials_.clear();
    answer_vertices_.clear();
    num_deleted_ = 0;
  }

  VertexId AddVertex(bool initial) {
    VertexId id = static_cast<VertexId>(vertices_.size());
    vertices_.push_back({xml::kNullNode, -1, -1, initial, true});
    if (initial) initials_.push_back(id);
    return id;
  }

  /// Bulk-creates `n` non-initial vertices with contiguous ids; returns the
  /// first id. One node's vertices being contiguous lets the evaluator keep
  /// a (base, count) pair per frame instead of a vector.
  VertexId AddVertexRange(int32_t n) {
    VertexId base = static_cast<VertexId>(vertices_.size());
    vertices_.resize(vertices_.size() + n,
                     Vertex{xml::kNullNode, -1, -1, false, true});
    return base;
  }

  void MarkInitial(VertexId v) {
    if (!vertices_[v].initial) {
      vertices_[v].initial = true;
      initials_.push_back(v);
    }
  }

  void AddEdge(VertexId from, VertexId to) {
    edges_.push_back({to, from, vertices_[from].first_edge,
                      vertices_[to].first_redge});
    vertices_[from].first_edge = static_cast<int32_t>(edges_.size() - 1);
    vertices_[to].first_redge = static_cast<int32_t>(edges_.size() - 1);
  }

  /// Removes the vertex (its AFA failed): phase two will not pass through it.
  void DeleteVertex(VertexId v) {
    if (vertices_[v].alive) {
      vertices_[v].alive = false;
      ++num_deleted_;
    }
  }

  /// ν(v) := n -- the vertex corresponds to a final state reached at n.
  void SetAnswer(VertexId v, xml::NodeId n) {
    vertices_[v].answer = n;
    answer_vertices_.push_back(v);
  }

  /// Phase two: one traversal from the alive initial vertices; returns the
  /// sorted, deduplicated answers.
  ///
  /// Contract: the builder must only record answers on vertices that are
  /// reachable from the initial vertices in the DELETION-FREE graph (true
  /// for HyPE by construction: every vertex is created by an actual run
  /// prefix). When no vertex was deleted, that reachability is assumed, not
  /// re-checked -- a disconnected answer vertex would be reported.
  std::vector<xml::NodeId> CollectAnswers() const;

  int64_t num_vertices() const { return static_cast<int64_t>(vertices_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

 private:
  struct Vertex {
    xml::NodeId answer;
    int32_t first_edge;
    int32_t first_redge;
    bool initial;
    bool alive;
  };
  struct Edge {
    VertexId to;
    VertexId from;
    int32_t next;
    int32_t rnext;
  };
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<VertexId> initials_;
  std::vector<VertexId> answer_vertices_;
  int64_t num_deleted_ = 0;

  // Reusable phase-two scratch (epoch-marked visited arrays: cone_ for the
  // backward cone of the answer vertices, seen_ for the forward walk).
  // 64-bit epochs: wraparound would silently alias stale marks.
  mutable std::vector<int64_t> cone_;
  mutable std::vector<int64_t> seen_;
  mutable int64_t seen_epoch_ = 0;
  mutable std::vector<VertexId> work_;
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_CANS_H_
