// The cans ("candidate answers") DAG of Algorithm HyPE (Section 6).
//
// During HyPE's single top-down pass, every (tree node, NFA state) pair the
// run touches becomes a vertex; NFA transitions become edges (ε-edges stay
// within one tree node, label edges cross to a child). When an annotated
// state's AFA evaluates to false at a node, that vertex is deleted,
// disconnecting every candidate answer that depended on the failed filter.
// Phase two is a single traversal from the initial vertices: answers are the
// ν-annotations of reachable, surviving final-state vertices.

#ifndef SMOQE_HYPE_CANS_H_
#define SMOQE_HYPE_CANS_H_

#include <cstdint>
#include <vector>

#include "automata/mfa.h"
#include "xml/tree.h"

namespace smoqe::hype {

class CansGraph {
 public:
  using VertexId = int32_t;

  VertexId AddVertex(bool initial) {
    vertices_.push_back({xml::kNullNode, -1, initial, true});
    return static_cast<VertexId>(vertices_.size() - 1);
  }

  void AddEdge(VertexId from, VertexId to) {
    edges_.push_back({to, vertices_[from].first_edge});
    vertices_[from].first_edge = static_cast<int32_t>(edges_.size() - 1);
  }

  /// Removes the vertex (its AFA failed): phase two will not pass through it.
  void DeleteVertex(VertexId v) { vertices_[v].alive = false; }

  /// ν(v) := n -- the vertex corresponds to a final state reached at n.
  void SetAnswer(VertexId v, xml::NodeId n) { vertices_[v].answer = n; }

  /// Phase two: one traversal from the alive initial vertices; returns the
  /// sorted, deduplicated answers.
  std::vector<xml::NodeId> CollectAnswers() const;

  int64_t num_vertices() const { return static_cast<int64_t>(vertices_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

 private:
  struct Vertex {
    xml::NodeId answer;
    int32_t first_edge;
    bool initial;
    bool alive;
  };
  struct Edge {
    VertexId to;
    int32_t next;
  };
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_CANS_H_
