// Algorithm HyPE (Hybrid Pass Evaluation), Section 6 of the paper.
//
// Evaluates an MFA over a document tree with a single top-down depth-first
// pass. Going down, the selecting-NFA state sets (mstates) and the requested
// AFA states (fstates↓) prune subtrees that cannot contribute. Coming back
// up, AFA truth values (fstates↑) are synthesized bottom-up, each node's
// same-node operator states resolved by a small monotone fixpoint. The pass
// records the run in a cans DAG; vertices whose filter failed are deleted at
// pop time, and one traversal of cans yields exactly the nodes reachable
// through fully validated runs.
//
// Two engineering refinements over the paper's pseudo-code (both behavior
// preserving, see DESIGN.md):
//  - guard regions: cans bookkeeping only starts below the first node whose
//    mstates contain a filter-annotated state; answers above emit directly,
//    keeping cans far smaller than T (the paper's own observation);
//  - lazy-DFA configurations: the (mstates, seeds, fstates↓) triples are
//    hash-consed and child transitions memoized per (config, label), so the
//    per-node cost is a table lookup instead of a set construction (the
//    determinization idea of Green et al. [13], applied to MFAs).
//
// With a SubtreeLabelIndex the evaluator additionally drops requested states
// that cannot reach an accepting configuration using only the labels present
// below a child (OptHyPE / OptHyPE-C); transitions are then memoized per
// (config, label, label-set).
//
// The per-run evaluation state and the traversal live in hype/engine.h
// (HypeEngine + RunSharedPass, an explicit-stack walk that can drive many
// engines at once); the query-derived state -- configuration store, memoized
// transition tables -- lives in a shareable hype::TransitionPlane
// (transition_plane.h). HypeEvaluator is the single-query front end. For
// evaluating a batch of queries in one shared pass, see hype/batch_hype.h.

#ifndef SMOQE_HYPE_HYPE_H_
#define SMOQE_HYPE_HYPE_H_

#include <vector>

#include "automata/mfa.h"
#include "hype/engine.h"
#include "hype/index.h"
#include "xml/doc_plane.h"
#include "xml/tree.h"

namespace smoqe::hype {

class HypeEvaluator {
 public:
  /// Builds (and owns) the columnar plane of `tree` unless options.plane
  /// provides a shared one.
  HypeEvaluator(const xml::Tree& tree, const automata::Mfa& mfa,
                HypeOptions options = {});

  /// n[[M]]: sorted ids of the answer nodes of the MFA at `context`.
  std::vector<xml::NodeId> Eval(xml::NodeId context);

  /// Abortable Eval: polls `control` at the documented checkpoint interval
  /// and returns kCancelled / kDeadlineExceeded instead of answers when the
  /// traversal is aborted. The evaluator stays reusable after an abort.
  StatusOr<std::vector<xml::NodeId>> Eval(xml::NodeId context,
                                          const EvalControl& control);

  /// Statistics of the last Eval call.
  const EvalStats& stats() const { return engine_.stats(); }

  /// Driver statistics of the last Eval call (jump-mode diagnostics).
  const SharedPassStats& pass_stats() const { return pass_stats_; }

 private:
  const xml::Tree& tree_;
  xml::DocPlane plane_owned_;        // empty when options.plane was provided
  const xml::DocPlane* plane_;
  bool enable_jump_;
  HypeEngine engine_;
  SharedPassStats pass_stats_;
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_HYPE_H_
