// Algorithm HyPE (Hybrid Pass Evaluation), Section 6 of the paper.
//
// Evaluates an MFA over a document tree with a single top-down depth-first
// pass. Going down, the selecting-NFA state sets (mstates) and the requested
// AFA states (fstates↓) prune subtrees that cannot contribute. Coming back
// up, AFA truth values (fstates↑) are synthesized bottom-up, each node's
// same-node operator states resolved by a small monotone fixpoint. The pass
// records the run in a cans DAG; vertices whose filter failed are deleted at
// pop time, and one traversal of cans yields exactly the nodes reachable
// through fully validated runs.
//
// Two engineering refinements over the paper's pseudo-code (both behavior
// preserving, see DESIGN.md):
//  - guard regions: cans bookkeeping only starts below the first node whose
//    mstates contain a filter-annotated state; answers above emit directly,
//    keeping cans far smaller than T (the paper's own observation);
//  - lazy-DFA configurations: the (mstates, seeds, fstates↓) triples are
//    hash-consed and child transitions memoized per (config, label), so the
//    per-node cost is a table lookup instead of a set construction (the
//    determinization idea of Green et al. [13], applied to MFAs).
//
// With a SubtreeLabelIndex the evaluator additionally drops requested states
// that cannot reach an accepting configuration using only the labels present
// below a child (OptHyPE / OptHyPE-C); transitions are then memoized per
// (config, label, label-set).

#ifndef SMOQE_HYPE_HYPE_H_
#define SMOQE_HYPE_HYPE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "automata/mfa.h"
#include "hype/cans.h"
#include "hype/index.h"
#include "xml/tree.h"

namespace smoqe::hype {

struct EvalStats {
  int64_t elements_total = 0;
  int64_t elements_visited = 0;
  int64_t cans_vertices = 0;
  int64_t cans_edges = 0;
  int64_t afa_state_requests = 0;
  int64_t configs_interned = 0;

  /// Fraction of element nodes never visited (the paper reports 78.2% for
  /// HyPE and 88% for OptHyPE on its example queries).
  double PrunedFraction() const {
    if (elements_total == 0) return 0.0;
    return 1.0 - static_cast<double>(elements_visited) /
                     static_cast<double>(elements_total);
  }
};

struct HypeOptions {
  /// When set, enables index-based pruning (OptHyPE / OptHyPE-C depending on
  /// how the index was built). The index must have been built for the same
  /// tree.
  const SubtreeLabelIndex* index = nullptr;
};

class HypeEvaluator {
 public:
  HypeEvaluator(const xml::Tree& tree, const automata::Mfa& mfa,
                HypeOptions options = {});

  /// n[[M]]: sorted ids of the answer nodes of the MFA at `context`.
  std::vector<xml::NodeId> Eval(xml::NodeId context);

  /// Statistics of the last Eval call.
  const EvalStats& stats() const { return stats_; }

 private:
  using StateId = automata::StateId;
  using ConfigId = int32_t;

  // A hash-consed evaluation configuration: the selecting states occupied at
  // a node, which of them were entered by the label move itself (seeds), and
  // the AFA states requested there.
  struct Config {
    std::vector<StateId> mstates;  // sorted
    std::vector<char> seeds;       // aligned with mstates
    std::vector<StateId> freq;     // sorted
    bool any_annotated = false;
    bool dead = false;             // both sets empty: prune the subtree
    bool has_final = false;
    bool has_ops = false;          // freq contains AND/OR/NOT states
    // Precomputed views of freq, so the hot pop path touches only what it
    // needs: indices of final states, and the transition states with their
    // move labels (for the fstates↑ fold).
    struct FreqTrans {
      int idx;
      StateId target;
      LabelId label;
      bool wildcard;
    };
    std::vector<int> finals;
    std::vector<FreqTrans> ftrans;
    std::vector<int> ops;          // indices of AND/OR/NOT states in freq
    // With the split property, operands mostly precede operators in id
    // order; only Kleene-star loops create back-edges. Without a back-edge a
    // single ascending sweep reaches the fixpoint.
    bool needs_iteration = false;
    // Annotated / final selecting states (indices into mstates).
    std::vector<std::pair<int, StateId>> annotated;  // (index, afa entry)
    std::vector<int> final_mstates;
    // Lazy transition tables. Without an index: one slot per tree label.
    // With an index: per label, a short list of (label-set id, successor) --
    // distinct subtree label-sets per (config, label) are few in practice,
    // so a linear scan beats hashing.
    std::vector<ConfigId> next;
    std::vector<std::vector<std::pair<int32_t, ConfigId>>> next_by_eff;
  };

  // Reusable per-depth scratch for the traversal.
  struct Frame {
    ConfigId config = -1;
    std::vector<char> fvals;                    // aligned with config freq
    std::vector<CansGraph::VertexId> vertices;  // aligned with config mstates
    int32_t eff_set = 0;
    int32_t pos_clock = 0;
  };
  Frame& FrameAt(int depth) {
    if (static_cast<size_t>(depth) < frames_.size()) return *frames_[depth];
    return GrowFrames(depth);
  }
  Frame& GrowFrames(int depth);

  int PosOf(StateId s, int32_t clock) const {
    return afa_pos_stamp_[s] == clock ? afa_pos_[s] : -1;
  }

  // Per-(label-set) productivity analysis, memoized for OptHyPE.
  struct Productive {
    std::vector<char> sel;
    std::vector<char> afa_cbt;
  };
  const Productive& ProductiveFor(int32_t set_id);

  /// The memoized child transition: configuration reached from `config` when
  /// descending into an element labeled `tree_label` whose subtree label set
  /// is `eff_set` (ignored without an index).
  ConfigId Transition(ConfigId config, LabelId tree_label, int32_t eff_set);
  ConfigId ComputeTransition(ConfigId config, LabelId tree_label,
                             int32_t eff_set);
  ConfigId InternConfig();  // interns the tmp_* scratch triple

  void RestrictToSeedReachable(std::vector<StateId>* mstates,
                               std::vector<char>* seeds);
  void Visit(CansGraph* cans, xml::NodeId node, int depth, bool in_region);

  const xml::Tree& tree_;
  const automata::Mfa& mfa_;
  HypeOptions options_;
  std::vector<LabelId> binding_;  // MFA label id -> tree label id
  std::unordered_map<int32_t, Productive> productive_cache_;
  EvalStats stats_;

  // Configuration store.
  std::vector<std::unique_ptr<Config>> configs_;
  std::unordered_map<uint64_t, std::vector<ConfigId>> config_buckets_;

  // Scratch (epoch-marked visited arrays; per-depth frames; intern buffers).
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<int32_t> nfa_mark_;
  std::vector<int32_t> nfa_mark2_;
  std::vector<int32_t> afa_mark_;
  int32_t nfa_epoch_ = 0;
  int32_t nfa_epoch2_ = 0;
  int32_t afa_epoch_ = 0;
  std::vector<std::pair<StateId, char>> tagged_;
  std::vector<StateId> reach_work_;
  std::vector<int32_t> afa_pos_;
  std::vector<int32_t> afa_pos_stamp_;
  int32_t afa_pos_clock_ = 0;
  std::vector<StateId> tmp_m_;
  std::vector<char> tmp_seeds_;
  std::vector<StateId> tmp_f_;
  std::vector<xml::NodeId> direct_answers_;
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_HYPE_H_
