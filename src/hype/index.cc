#include "hype/index.h"

#include <cassert>
#include <mutex>
#include <string>

namespace smoqe::hype {

namespace {

struct SetHasher {
  size_t operator()(const std::vector<uint64_t>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : v) {
      h ^= std::hash<uint64_t>()(w);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace

SubtreeLabelIndex SubtreeLabelIndex::Build(const xml::Tree& tree, Mode mode,
                                           int threshold) {
  SubtreeLabelIndex index;
  index.mode_ = mode;
  index.num_labels_ = tree.labels().size();
  index.words_ = (index.num_labels_ + 63) / 64;
  if (index.words_ == 0) index.words_ = 1;
  const int words = index.words_;

  // Bottom-up: parents precede children in node-id order, so a reverse scan
  // sees every child before its parent.
  std::vector<std::vector<uint64_t>> sets(
      tree.size(), std::vector<uint64_t>(words, 0));
  std::vector<int32_t> elem_count(tree.size(), 0);
  for (xml::NodeId id = tree.size() - 1; id >= 0; --id) {
    if (!tree.is_element(id)) continue;
    xml::NodeId p = tree.parent(id);
    if (p != xml::kNullNode) {
      LabelId l = tree.label(id);
      sets[p][l / 64] |= uint64_t{1} << (l % 64);
      for (int w = 0; w < words; ++w) sets[p][w] |= sets[id][w];
      elem_count[p] += elem_count[id] + 1;
    }
  }

  std::unordered_map<std::vector<uint64_t>, int32_t, SetHasher> interned;
  auto intern = [&](const std::vector<uint64_t>& s) {
    auto it = interned.find(s);
    if (it != interned.end()) return it->second;
    int32_t id = static_cast<int32_t>(interned.size());
    interned.emplace(s, id);
    index.set_pool_.insert(index.set_pool_.end(), s.begin(), s.end());
    return id;
  };

  if (mode == Mode::kFull) {
    index.per_node_.resize(tree.size(), 0);
    for (xml::NodeId id = 0; id < tree.size(); ++id) {
      if (tree.is_element(id)) index.per_node_[id] = intern(sets[id]);
    }
  } else {
    index.has_entry_.assign((tree.size() + 63) / 64, 0);
    for (xml::NodeId id = 0; id < tree.size(); ++id) {
      if (!tree.is_element(id)) continue;
      if (id == tree.root() || elem_count[id] >= threshold) {
        index.sparse_.emplace(id, intern(sets[id]));
        index.has_entry_[id / 64] |= uint64_t{1} << (id % 64);
      }
    }
    index.context_memo_ = std::make_shared<ContextMemo>();
  }
  return index;
}

int32_t SubtreeLabelIndex::SetForContext(const xml::Tree& tree,
                                         xml::NodeId context) const {
  if (mode_ == Mode::kFull) return per_node_[context];
  {
    // Hit path: shared lock only -- every shard worker and the probe pass
    // read this memo concurrently, and after warmup nobody writes. The
    // value is copied out under the lock; holding a reference into the map
    // across the release would race a concurrent inserter's rehash.
    std::shared_lock<std::shared_mutex> lock(context_memo_->mu);
    auto it = context_memo_->sets.find(context);
    if (it != context_memo_->sets.end()) return it->second;
  }
  // Miss: take the write lock FIRST, re-check, and do the ancestor walk
  // while holding it. Racing misses on the same context (every shard of a
  // batch resolves the same context at once) then dedupe to one O(depth)
  // walk instead of N, and nobody ever upgrades a lock mid-lookup. The
  // walked suffix shares one nearest-indexed-ancestor, so memoizing the
  // whole path makes later contexts on it O(1).
  std::unique_lock<std::shared_mutex> lock(context_memo_->mu);
  auto it = context_memo_->sets.find(context);
  if (it != context_memo_->sets.end()) return it->second;
  int32_t result = 0;
  bool found = false;
  xml::NodeId stop = xml::kNullNode;  // first node with an entry
  for (xml::NodeId n = context; n != xml::kNullNode; n = tree.parent(n)) {
    auto sp = sparse_.find(n);
    if (sp != sparse_.end()) {
      result = sp->second;
      found = true;
      stop = n;
      break;
    }
  }
  assert(found && "root must be indexed");
  (void)found;
  for (xml::NodeId n = context; n != stop; n = tree.parent(n)) {
    context_memo_->sets.emplace(n, result);
  }
  return result;
}

size_t SubtreeLabelIndex::MemoryBytes() const {
  size_t bytes = set_pool_.size() * sizeof(uint64_t);
  bytes += per_node_.size() * sizeof(int32_t);
  bytes += has_entry_.size() * sizeof(uint64_t);
  // unordered_map overhead approximated as key+value+pointer per entry.
  bytes += sparse_.size() * (sizeof(xml::NodeId) + sizeof(int32_t) + sizeof(void*));
  return bytes;
}

}  // namespace smoqe::hype
