#include "hype/batch_hype.h"

#include <algorithm>
#include <cassert>

#include "common/hashing.h"

namespace smoqe::hype {

BatchHypeEvaluator::BatchHypeEvaluator(const xml::Tree& tree,
                                       std::vector<const automata::Mfa*> mfas,
                                       BatchHypeOptions options)
    : tree_(tree),
      options_(options),
      plane_owned_(options.plane == nullptr ? xml::DocPlane::Build(tree)
                                            : xml::DocPlane{}),
      plane_(options.plane == nullptr ? &plane_owned_ : options.plane) {
  assert(plane_->size() == tree.CountElements() &&
         "plane must mirror the evaluated tree");
  engines_.reserve(mfas.size());
  HypeOptions engine_options;
  engine_options.index = options_.index;
  engine_options.plane = plane_;  // text-presence prefilter at pop time
  for (const automata::Mfa* mfa : mfas) {
    engine_options.transition_plane =
        options_.plane_store != nullptr ? options_.plane_store->For(mfa)
                                        : nullptr;
    engines_.push_back(std::make_unique<HypeEngine>(tree, *mfa, engine_options));
  }
}

int32_t BatchHypeEvaluator::InternState(std::vector<Member> members) {
  uint64_t h = members.size();
  for (const Member& m : members) {
    h = HashCombine(h, m.engine);
    h = HashCombine(h, static_cast<uint64_t>(m.config));
    h = HashCombine(h, m.framed ? 1u : 0u);
  }
  std::vector<int32_t>& bucket = state_buckets_[h];
  auto equal = [](const std::vector<Member>& a, const std::vector<Member>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].engine != b[i].engine || a[i].config != b[i].config ||
          a[i].framed != b[i].framed) {
        return false;
      }
    }
    return true;
  };
  for (int32_t id : bucket) {
    if (equal(states_[id]->members, members)) return id;
  }
  auto state = std::make_unique<JointState>();
  for (const Member& m : members) {
    if (m.framed) {
      state->framed.push_back(m.engine);
    } else if (engines_[m.engine]->ConfigHasFinal(m.config)) {
      state->frameless_finals.push_back(m.engine);
    }
  }
  state->members = std::move(members);
  int32_t id = static_cast<int32_t>(states_.size());
  states_.push_back(std::move(state));
  bucket.push_back(id);
  return id;
}

int64_t BatchHypeEvaluator::ComputeEdge(int32_t state, LabelId label,
                                        int32_t eff_set) {
  JointAction action;
  std::vector<Member> child_members;
  for (const Member& m : states_[state]->members) {
    HypeEngine& engine = *engines_[m.engine];
    SuccRef succ = engine.PeekTransition(m.config, label, eff_set);
    if (engine.ConfigDead(succ.config)) continue;  // this engine prunes
    bool framed = m.framed || !engine.ConfigSimple(succ.config);
    child_members.push_back({m.engine, succ.config, framed});
    if (framed) {
      if (m.framed) {
        action.descend.push_back({m.engine, succ});
      } else {
        action.begin.push_back({m.engine, succ.config});
      }
    }
  }
  int32_t next = -1;
  if (!child_members.empty()) next = InternState(std::move(child_members));
  int32_t action_id = -1;
  if (!action.descend.empty() || !action.begin.empty()) {
    action_id = static_cast<int32_t>(actions_.size());
    actions_.push_back(std::move(action));
  }
  return PackEdge(next, action_id);
}

int64_t BatchHypeEvaluator::EdgeFor(JointState& st, int32_t state,
                                    LabelId label, int32_t eff_set) {
  if (options_.index == nullptr) {
    if (st.edges.empty()) st.edges.assign(tree_.labels().size(), kEdgeUnset);
    int64_t& slot = st.edges[label];
    if (slot == kEdgeUnset) slot = ComputeEdge(state, label, eff_set);
    return slot;
  }
  if (st.edges_by_eff.empty()) st.edges_by_eff.resize(tree_.labels().size());
  std::vector<std::pair<int32_t, int64_t>>& slots = st.edges_by_eff[label];
  for (const auto& [eff, edge] : slots) {
    if (eff == eff_set) return edge;
  }
  int64_t edge = ComputeEdge(state, label, eff_set);
  // `st` stays valid: JointState objects are heap-stable (unique_ptr).
  slots.emplace_back(eff_set, edge);
  return edge;
}

// Derives (once per joint state) whether a frame holding this state may scan
// by posting list, and with which labels. Jumpable states have only
// frameless, final-free members: a position whose label is in no member's
// relevant set is then transparent for the whole batch -- every member
// self-loops, so the joint state (and with it every joint decision, answer,
// and prune) is unchanged, and the full DFS would have entered the position
// with no effect beyond the visit counters. Candidates are entered through
// the ordinary joint edge of THIS state, which is exactly the edge the full
// DFS would take at the candidate's transparent parent.
bool BatchHypeEvaluator::JumpPlanFor(int32_t state) {
  JointState& st = *states_[state];
  if (st.jump_ready) return st.jumpable;
  st.jump_ready = true;
  if (!st.framed.empty() || !st.frameless_finals.empty()) return false;
  for (const Member& m : st.members) {
    std::span<const LabelId> r = engines_[m.engine]->RelevantLabels(m.config);
    st.jump_labels.insert(st.jump_labels.end(), r.begin(), r.end());
  }
  std::sort(st.jump_labels.begin(), st.jump_labels.end());
  st.jump_labels.erase(
      std::unique(st.jump_labels.begin(), st.jump_labels.end()),
      st.jump_labels.end());
  // Density gate: leaping pays a lower_bound per candidate per label, the
  // linear scan one table lookup per position. Only jump when the merged
  // posting mass says most positions will actually be skipped (label-DENSE
  // states fall back to the full columnar scan; answers are identical
  // either way, this is purely a cost model).
  int64_t posting_mass = 0;
  for (LabelId l : st.jump_labels) {
    posting_mass += static_cast<int64_t>(plane_->postings(l).size());
  }
  st.jumpable = posting_mass * 4 < plane_->size();
  if (!st.jumpable) st.jump_labels.clear();
  return st.jumpable;
}

void BatchHypeEvaluator::RunJointPass(xml::NodeId top, int32_t top_eff,
                                      int32_t root_state, EvalGate* gate) {
  const SubtreeLabelIndex* index = options_.index;
  const xml::DocPlane& plane = *plane_;
  const bool jump_allowed = options_.enable_jump && index == nullptr;

  auto enter = [&](JointState& st, int32_t id, xml::NodeId node) {
    if (st.visits++ == 0) touched_states_.push_back(id);
    ++pass_stats_.nodes_walked;
    for (uint32_t e : st.frameless_finals) engines_[e]->EmitAnswer(node);
  };

  {
    JointState& root = *states_[root_state];
    for (const Member& m : root.members) {
      if (m.framed) engines_[m.engine]->BeginFrames(m.config);
    }
    enter(root, root_state, top);
  }
  const int32_t top_pos = plane.pos_of(top);
  std::vector<WalkFrame>& stack = walk_stack_;
  stack.clear();
  stack.push_back({top_pos, plane.end_of(top_pos), top_pos + 1, top_eff,
                   root_state, states_[root_state].get(),
                   jump_allowed && JumpPlanFor(root_state)});

  while (!stack.empty()) {
    // One poll per walk step: a step enters at most one node, so an abort
    // lands within `checkpoint_interval` node entries of the cancel event.
    // The caller (EvalSubtree) unwinds the partial pass state.
    if (gate != nullptr && !gate->Poll()) return;

    WalkFrame& frame = stack.back();

    // Locate the next position to enter: the cursor itself (full scan) or
    // the next posting of a relevant label (jump mode). Jumped-over
    // positions are transparent -- the joint state holds across them -- so
    // they are accounted to the state in bulk and distributed to the member
    // engines' visit counters after the pass, exactly like `visits`.
    int32_t c = frame.end;
    if (frame.cursor < frame.end) {
      if (!frame.jump) {
        c = frame.cursor;
      } else {
        int32_t next = frame.end;
        for (LabelId l : frame.st->jump_labels) {
          std::span<const int32_t> p = plane.postings(l);
          auto it = std::lower_bound(p.begin(), p.end(), frame.cursor);
          if (it != p.end() && *it < next) next = *it;
        }
        int64_t skipped;
        if (next >= frame.end) {
          skipped = frame.end - frame.cursor;
          frame.cursor = frame.end;
        } else {
          skipped = next - frame.cursor;
          frame.cursor = next;
          c = next;
        }
        frame.st->jumped += skipped;
        pass_stats_.positions_jumped += skipped;
      }
    }

    if (c >= frame.end) {
      for (uint32_t e : frame.st->framed) {
        engines_[e]->ExitNode(plane.node_at(frame.pos));
      }
      stack.pop_back();
      continue;
    }

    // Decode the child and resolve its subtree label set once; advance the
    // whole batch with one packed joint-table entry.
    const LabelId cl = plane.label(c);
    const int32_t eff_c =
        index != nullptr ? index->EffectiveSet(plane.node_at(c), frame.eff_set)
                         : frame.eff_set;
    const int32_t cend = plane.end_of(c);
    frame.cursor = cend;
    const int64_t edge = EdgeFor(*frame.st, frame.joint, cl, eff_c);
    const int32_t next = EdgeNext(edge);
    if (next < 0) {
      ++pass_stats_.subtrees_skipped;  // every engine pruned this subtree
      continue;
    }
    const int32_t action = EdgeAction(edge);
    JointState* next_st = states_[next].get();
    if (action < 0 && cend == c + 1) {
      // Action-free LEAF: no engine needs a frame and there are no children
      // to scan, so the full enter/exit round-trip collapses to the enter
      // effects -- the dominant shape on label-dense navigation batches.
      enter(*next_st, next, plane.node_at(c));
      continue;
    }
    if (action >= 0) {
      const JointAction& a = actions_[action];
      for (const auto& [e, succ] : a.descend) engines_[e]->DescendWith(succ);
      for (const auto& [e, cfg] : a.begin) engines_[e]->BeginFrames(cfg);
    }
    enter(*next_st, next, plane.node_at(c));
    stack.push_back({c, cend, c + 1, eff_c, next, next_st,
                     jump_allowed && JumpPlanFor(next)});
  }
}

std::vector<std::vector<xml::NodeId>> BatchHypeEvaluator::EvalAll(
    xml::NodeId context, EvalGate* gate) {
  return EvalSubtree(context, context, gate);
}

std::vector<std::vector<xml::NodeId>> BatchHypeEvaluator::EvalSubtree(
    xml::NodeId context, xml::NodeId top, EvalGate* gate) {
  pass_stats_ = SharedPassStats{};
  // Entry refresh: a pass that is already cancelled or past its deadline
  // must abort before any work, countdown notwithstanding (the tree may be
  // smaller than one checkpoint interval). Mirrors the solo and sharded
  // entry points.
  if (gate != nullptr && !gate->Refresh()) {
    return std::vector<std::vector<xml::NodeId>>(engines_.size());
  }
  const SubtreeLabelIndex* index = options_.index;

  // The context→top spine, top-down (empty when top == context), with the
  // effective subtree-label set at each node (and at top).
  std::vector<xml::NodeId> path;
  for (xml::NodeId n = top; n != context; n = tree_.parent(n)) {
    if (n == xml::kNullNode) {
      // `top` is not in the subtree of `context`: a caller bug, but keep it
      // diagnosable rather than undefined (empty answers, loud in debug).
      assert(false && "EvalSubtree: top must be a descendant of context");
      return std::vector<std::vector<xml::NodeId>>(engines_.size());
    }
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  int32_t eff = index != nullptr ? index->SetForContext(tree_, context) : 0;
  std::vector<int32_t> path_effs;
  path_effs.reserve(path.size());
  for (xml::NodeId n : path) {
    if (index != nullptr) eff = index->EffectiveSet(n, eff);
    path_effs.push_back(eff);
  }

  std::vector<Member> root_members;
  for (size_t i = 0; i < engines_.size(); ++i) {
    HypeEngine& engine = *engines_[i];
    int32_t config = engine.PrepareRoot(context);
    for (size_t k = 0; k < path.size() && config >= 0; ++k) {
      SuccRef succ =
          engine.PeekTransition(config, tree_.label(path[k]), path_effs[k]);
      config = engine.ConfigDead(succ.config) ? -1 : succ.config;
    }
    if (config < 0) continue;  // dead at or above top: no answers here
    root_members.push_back(
        {static_cast<uint32_t>(i), config, !engine.ConfigSimple(config)});
  }
  if (!root_members.empty()) {
    RunJointPass(top, eff, InternState(std::move(root_members)), gate);
  }
  if (gate != nullptr && gate->tripped()) {
    // Aborted mid-pass: reset the per-pass counters on every touched joint
    // state WITHOUT distributing them (the run's statistics are discarded
    // along with its answers), leaving the evaluator ready for the next
    // pass. Engines reset themselves at their next PrepareRoot.
    for (int32_t id : touched_states_) {
      states_[id]->visits = 0;
      states_[id]->jumped = 0;
    }
    touched_states_.clear();
    return std::vector<std::vector<xml::NodeId>>(engines_.size());
  }

  // Frameless engines never touched their per-node counters; recover their
  // visit totals from the joint states entered by this pass (a frameless
  // member of a state was live at every node the state was entered at, and
  // at every transparent position jump mode skipped under it -- jumped > 0
  // only for states whose members are all frameless).
  for (int32_t id : touched_states_) {
    JointState& st = *states_[id];
    for (const Member& m : st.members) {
      if (!m.framed) engines_[m.engine]->AddVisited(st.visits + st.jumped);
    }
    st.visits = 0;
    st.jumped = 0;
  }
  touched_states_.clear();

  std::vector<std::vector<xml::NodeId>> answers;
  answers.reserve(engines_.size());
  for (const std::unique_ptr<HypeEngine>& e : engines_) {
    answers.push_back(e->TakeAnswers());
  }
  return answers;
}

}  // namespace smoqe::hype
