#include "hype/batch_hype.h"

#include <algorithm>
#include <cassert>

#include "common/hashing.h"

namespace smoqe::hype {

BatchHypeEvaluator::BatchHypeEvaluator(const xml::Tree& tree,
                                       std::vector<const automata::Mfa*> mfas,
                                       BatchHypeOptions options)
    : tree_(tree), options_(options) {
  engines_.reserve(mfas.size());
  HypeOptions engine_options;
  engine_options.index = options_.index;
  for (const automata::Mfa* mfa : mfas) {
    engines_.push_back(std::make_unique<HypeEngine>(tree, *mfa, engine_options));
  }
}

int32_t BatchHypeEvaluator::InternState(std::vector<Member> members) {
  uint64_t h = members.size();
  for (const Member& m : members) {
    h = HashCombine(h, m.engine);
    h = HashCombine(h, static_cast<uint64_t>(m.config));
    h = HashCombine(h, m.framed ? 1u : 0u);
  }
  std::vector<int32_t>& bucket = state_buckets_[h];
  auto equal = [](const std::vector<Member>& a, const std::vector<Member>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].engine != b[i].engine || a[i].config != b[i].config ||
          a[i].framed != b[i].framed) {
        return false;
      }
    }
    return true;
  };
  for (int32_t id : bucket) {
    if (equal(states_[id]->members, members)) return id;
  }
  auto state = std::make_unique<JointState>();
  for (const Member& m : members) {
    if (m.framed) {
      state->framed.push_back(m.engine);
    } else if (engines_[m.engine]->ConfigHasFinal(m.config)) {
      state->frameless_finals.push_back(m.engine);
    }
  }
  state->members = std::move(members);
  int32_t id = static_cast<int32_t>(states_.size());
  states_.push_back(std::move(state));
  bucket.push_back(id);
  return id;
}

int32_t BatchHypeEvaluator::ComputeEdge(int32_t state, LabelId label,
                                        int32_t eff_set) {
  JointEdge edge;
  std::vector<Member> child_members;
  for (const Member& m : states_[state]->members) {
    HypeEngine& engine = *engines_[m.engine];
    SuccRef succ = engine.PeekTransition(m.config, label, eff_set);
    if (engine.ConfigDead(succ.config)) continue;  // this engine prunes
    bool framed = m.framed || !engine.ConfigSimple(succ.config);
    child_members.push_back({m.engine, succ.config, framed});
    if (framed) {
      if (m.framed) {
        edge.descend.push_back({m.engine, succ});
      } else {
        edge.begin.push_back({m.engine, succ.config});
      }
    }
  }
  if (!child_members.empty()) edge.next = InternState(std::move(child_members));
  edges_.push_back(std::move(edge));
  return static_cast<int32_t>(edges_.size()) - 1;
}

int32_t BatchHypeEvaluator::EdgeFor(int32_t state, LabelId label,
                                    int32_t eff_set) {
  JointState& st = *states_[state];
  if (options_.index == nullptr) {
    if (st.edges.empty()) st.edges.assign(tree_.labels().size(), -1);
    int32_t& slot = st.edges[label];
    if (slot < 0) slot = ComputeEdge(state, label, eff_set);
    return slot;
  }
  if (st.edges_by_eff.empty()) st.edges_by_eff.resize(tree_.labels().size());
  std::vector<std::pair<int32_t, int32_t>>& slots = st.edges_by_eff[label];
  for (const auto& [eff, edge] : slots) {
    if (eff == eff_set) return edge;
  }
  int32_t edge = ComputeEdge(state, label, eff_set);
  // `st` stays valid: JointState objects are heap-stable (unique_ptr).
  slots.emplace_back(eff_set, edge);
  return edge;
}

void BatchHypeEvaluator::RunJointPass(xml::NodeId top, int32_t top_eff,
                                      int32_t root_state) {
  const SubtreeLabelIndex* index = options_.index;

  auto enter = [&](JointState& st, int32_t id, xml::NodeId node) {
    if (st.visits++ == 0) touched_states_.push_back(id);
    ++pass_stats_.nodes_walked;
    for (uint32_t e : st.frameless_finals) engines_[e]->EmitAnswer(node);
  };

  {
    JointState& root = *states_[root_state];
    for (const Member& m : root.members) {
      if (m.framed) engines_[m.engine]->BeginFrames(m.config);
    }
    enter(root, root_state, top);
  }
  std::vector<WalkFrame>& stack = walk_stack_;
  stack.clear();
  stack.push_back({top, tree_.first_child(top), top_eff, root_state,
                   states_[root_state].get()});

  while (!stack.empty()) {
    WalkFrame& top = stack.back();

    xml::NodeId c = top.next_child;
    while (c != xml::kNullNode && !tree_.is_element(c)) {
      c = tree_.next_sibling(c);
    }
    if (c == xml::kNullNode) {
      for (uint32_t e : top.st->framed) {
        engines_[e]->ExitNode(top.node);
      }
      stack.pop_back();
      continue;
    }
    top.next_child = tree_.next_sibling(c);

    // Decode the child and resolve its subtree label set once; advance the
    // whole batch with one joint-table lookup.
    LabelId cl = tree_.label(c);
    int32_t eff_c =
        index != nullptr ? index->EffectiveSet(c, top.eff_set) : top.eff_set;
    const int32_t eid = EdgeFor(top.joint, cl, eff_c);
    const JointEdge& edge = edges_[eid];
    if (edge.next < 0) {
      ++pass_stats_.subtrees_skipped;  // every engine pruned this subtree
      continue;
    }
    for (const auto& [e, succ] : edge.descend) engines_[e]->DescendWith(succ);
    for (const auto& [e, cfg] : edge.begin) engines_[e]->BeginFrames(cfg);
    JointState* next_st = states_[edge.next].get();
    enter(*next_st, edge.next, c);
    stack.push_back({c, tree_.first_child(c), eff_c, edge.next, next_st});
  }
}

std::vector<std::vector<xml::NodeId>> BatchHypeEvaluator::EvalAll(
    xml::NodeId context) {
  return EvalSubtree(context, context);
}

std::vector<std::vector<xml::NodeId>> BatchHypeEvaluator::EvalSubtree(
    xml::NodeId context, xml::NodeId top) {
  pass_stats_ = SharedPassStats{};
  const SubtreeLabelIndex* index = options_.index;

  // The context→top spine, top-down (empty when top == context), with the
  // effective subtree-label set at each node (and at top).
  std::vector<xml::NodeId> path;
  for (xml::NodeId n = top; n != context; n = tree_.parent(n)) {
    if (n == xml::kNullNode) {
      // `top` is not in the subtree of `context`: a caller bug, but keep it
      // diagnosable rather than undefined (empty answers, loud in debug).
      assert(false && "EvalSubtree: top must be a descendant of context");
      return std::vector<std::vector<xml::NodeId>>(engines_.size());
    }
    path.push_back(n);
  }
  std::reverse(path.begin(), path.end());
  int32_t eff = index != nullptr ? index->SetForContext(tree_, context) : 0;
  std::vector<int32_t> path_effs;
  path_effs.reserve(path.size());
  for (xml::NodeId n : path) {
    if (index != nullptr) eff = index->EffectiveSet(n, eff);
    path_effs.push_back(eff);
  }

  std::vector<Member> root_members;
  for (size_t i = 0; i < engines_.size(); ++i) {
    HypeEngine& engine = *engines_[i];
    int32_t config = engine.PrepareRoot(context);
    for (size_t k = 0; k < path.size() && config >= 0; ++k) {
      SuccRef succ =
          engine.PeekTransition(config, tree_.label(path[k]), path_effs[k]);
      config = engine.ConfigDead(succ.config) ? -1 : succ.config;
    }
    if (config < 0) continue;  // dead at or above top: no answers here
    root_members.push_back(
        {static_cast<uint32_t>(i), config, !engine.ConfigSimple(config)});
  }
  if (!root_members.empty()) {
    RunJointPass(top, eff, InternState(std::move(root_members)));
  }

  // Frameless engines never touched their per-node counters; recover their
  // visit totals from the joint states entered by this pass (a frameless
  // member of a state was live at every node the state was entered at).
  for (int32_t id : touched_states_) {
    JointState& st = *states_[id];
    for (const Member& m : st.members) {
      if (!m.framed) engines_[m.engine]->AddVisited(st.visits);
    }
    st.visits = 0;
  }
  touched_states_.clear();

  std::vector<std::vector<xml::NodeId>> answers;
  answers.reserve(engines_.size());
  for (const std::unique_ptr<HypeEngine>& e : engines_) {
    answers.push_back(e->TakeAnswers());
  }
  return answers;
}

}  // namespace smoqe::hype
