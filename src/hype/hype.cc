#include "hype/hype.h"

namespace smoqe::hype {

namespace {

hype::HypeOptions WithPlane(HypeOptions options, const xml::DocPlane* plane) {
  options.plane = plane;
  return options;
}

}  // namespace

HypeEvaluator::HypeEvaluator(const xml::Tree& tree, const automata::Mfa& mfa,
                             HypeOptions options)
    : tree_(tree),
      plane_owned_(options.plane == nullptr ? xml::DocPlane::Build(tree)
                                            : xml::DocPlane{}),
      plane_(options.plane == nullptr ? &plane_owned_ : options.plane),
      enable_jump_(options.enable_jump),
      engine_(tree, mfa, WithPlane(options, plane_)) {}

std::vector<xml::NodeId> HypeEvaluator::Eval(xml::NodeId context) {
  pass_stats_ = SharedPassStats{};
  if (engine_.Start(context)) {
    HypeEngine* engine = &engine_;
    pass_stats_ = RunSharedPass(tree_, *plane_, engine_.index(), context,
                                {&engine, 1}, enable_jump_);
  }
  return engine_.TakeAnswers();
}

StatusOr<std::vector<xml::NodeId>> HypeEvaluator::Eval(
    xml::NodeId context, const EvalControl& control) {
  pass_stats_ = SharedPassStats{};
  EvalGate gate(&control);
  if (!gate.Refresh()) return gate.status();  // already cancelled / expired
  if (engine_.Start(context)) {
    HypeEngine* engine = &engine_;
    pass_stats_ = RunSharedPass(tree_, *plane_, engine_.index(), context,
                                {&engine, 1}, enable_jump_, &gate);
    if (gate.tripped()) {
      // Drop the aborted run's partial state; the next Start() resets the
      // engine, so callers may retry on the same evaluator.
      (void)engine_.TakeAnswers();
      return gate.status();
    }
  }
  return engine_.TakeAnswers();
}

}  // namespace smoqe::hype
