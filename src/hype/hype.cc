#include "hype/hype.h"

namespace smoqe::hype {

HypeEvaluator::HypeEvaluator(const xml::Tree& tree, const automata::Mfa& mfa,
                             HypeOptions options)
    : tree_(tree), engine_(tree, mfa, options) {}

std::vector<xml::NodeId> HypeEvaluator::Eval(xml::NodeId context) {
  if (engine_.Start(context)) {
    HypeEngine* engine = &engine_;
    RunSharedPass(tree_, engine_.index(), context, {&engine, 1});
  }
  return engine_.TakeAnswers();
}

}  // namespace smoqe::hype
