#include "hype/hype.h"

#include <algorithm>
#include <cassert>

#include "automata/afa.h"

namespace smoqe::hype {

using automata::AfaKind;
using automata::AfaState;
using automata::kNoState;
using automata::Mfa;
using automata::NfaTransition;

namespace {

// Index of `id` in the sorted vector, or -1.
int IndexOf(const std::vector<automata::StateId>& sorted, automata::StateId id) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
  if (it == sorted.end() || *it != id) return -1;
  return static_cast<int>(it - sorted.begin());
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

HypeEvaluator::HypeEvaluator(const xml::Tree& tree, const Mfa& mfa,
                             HypeOptions options)
    : tree_(tree), mfa_(mfa), options_(options) {
  binding_.resize(mfa_.labels.size());
  for (LabelId l = 0; l < mfa_.labels.size(); ++l) {
    binding_[l] = tree_.labels().Lookup(mfa_.labels.name(l));
  }
  stats_.elements_total = tree_.CountElements();
  nfa_mark_.assign(mfa_.nfa.size(), 0);
  nfa_mark2_.assign(mfa_.nfa.size(), 0);
  afa_mark_.assign(mfa_.afa.size(), 0);
  afa_pos_.assign(mfa_.afa.size(), 0);
  afa_pos_stamp_.assign(mfa_.afa.size(), 0);
}

HypeEvaluator::Frame& HypeEvaluator::GrowFrames(int depth) {
  while (static_cast<int>(frames_.size()) <= depth) {
    frames_.push_back(std::make_unique<Frame>());
  }
  return *frames_[depth];
}

// After index-based filtering, drop every state that is no longer
// ε-reachable from a surviving seed: pruning may remove an annotated guard
// whose CanBeTrue is false, and states hiding behind it must disappear with
// it (otherwise they would look unguarded outside a cans region).
void HypeEvaluator::RestrictToSeedReachable(std::vector<StateId>* mstates,
                                            std::vector<char>* seeds) {
  int32_t member = ++nfa_epoch_;
  for (StateId s : *mstates) nfa_mark_[s] = member;
  int32_t reach = ++nfa_epoch2_;
  reach_work_.clear();
  for (size_t i = 0; i < mstates->size(); ++i) {
    if ((*seeds)[i]) {
      nfa_mark2_[(*mstates)[i]] = reach;
      reach_work_.push_back((*mstates)[i]);
    }
  }
  for (size_t i = 0; i < reach_work_.size(); ++i) {
    for (StateId e : mfa_.nfa[reach_work_[i]].eps) {
      if (nfa_mark_[e] == member && nfa_mark2_[e] != reach) {
        nfa_mark2_[e] = reach;
        reach_work_.push_back(e);
      }
    }
  }
  size_t w = 0;
  for (size_t i = 0; i < mstates->size(); ++i) {
    if (nfa_mark2_[(*mstates)[i]] == reach) {
      (*mstates)[w] = (*mstates)[i];
      (*seeds)[w] = (*seeds)[i];
      ++w;
    }
  }
  mstates->resize(w);
  seeds->resize(w);
}

const HypeEvaluator::Productive& HypeEvaluator::ProductiveFor(int32_t set_id) {
  auto it = productive_cache_.find(set_id);
  if (it != productive_cache_.end()) return it->second;

  const SubtreeLabelIndex& index = *options_.index;
  auto label_available = [&](LabelId mfa_label, bool wildcard) {
    if (wildcard) return !index.IsEmpty(set_id);
    LabelId t = binding_[mfa_label];
    return t != kNoLabel && index.Contains(set_id, t);
  };

  Productive prod;
  // CanBeTrue over AFA states: least fixpoint of a monotone system (NOT is
  // conservatively "can be true": its operand may be false below).
  prod.afa_cbt.assign(mfa_.afa.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < mfa_.afa.size(); ++s) {
      if (prod.afa_cbt[s]) continue;
      const AfaState& a = mfa_.afa[s];
      bool v = false;
      switch (a.kind) {
        case AfaKind::kFinal:
        case AfaKind::kNot:
          v = true;
          break;
        case AfaKind::kTrans:
          v = label_available(a.label, a.wildcard) && prod.afa_cbt[a.target];
          break;
        case AfaKind::kOr:
          for (StateId o : a.operands) v = v || prod.afa_cbt[o];
          break;
        case AfaKind::kAnd:
          v = true;
          for (StateId o : a.operands) v = v && prod.afa_cbt[o];
          break;
      }
      if (v) {
        prod.afa_cbt[s] = 1;
        changed = true;
      }
    }
  }

  // Selecting-state productivity: can reach a final state using available
  // labels, through states whose annotations can still be true.
  prod.sel.assign(mfa_.nfa.size(), 0);
  auto valid = [&](StateId s) {
    StateId e = mfa_.nfa[s].afa_entry;
    return e == kNoState || prod.afa_cbt[e];
  };
  changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < mfa_.nfa.size(); ++s) {
      if (prod.sel[s] || !valid(static_cast<StateId>(s))) continue;
      bool v = mfa_.nfa[s].is_final;
      for (const NfaTransition& t : mfa_.nfa[s].trans) {
        if (v) break;
        v = label_available(t.label, t.wildcard) && prod.sel[t.to];
      }
      for (StateId e : mfa_.nfa[s].eps) {
        if (v) break;
        v = prod.sel[e] != 0;
      }
      if (v) {
        prod.sel[s] = 1;
        changed = true;
      }
    }
  }
  return productive_cache_.emplace(set_id, std::move(prod)).first->second;
}

// Interns the configuration currently held in tmp_m_ / tmp_seeds_ / tmp_f_.
HypeEvaluator::ConfigId HypeEvaluator::InternConfig() {
  uint64_t h = HashCombine(tmp_m_.size(), tmp_f_.size());
  for (StateId s : tmp_m_) h = HashCombine(h, static_cast<uint64_t>(s));
  for (char c : tmp_seeds_) h = HashCombine(h, static_cast<uint64_t>(c));
  for (StateId s : tmp_f_) h = HashCombine(h, static_cast<uint64_t>(s));
  std::vector<ConfigId>& bucket = config_buckets_[h];
  for (ConfigId id : bucket) {
    const Config& c = *configs_[id];
    if (c.mstates == tmp_m_ && c.seeds == tmp_seeds_ && c.freq == tmp_f_) {
      return id;
    }
  }
  auto config = std::make_unique<Config>();
  config->mstates = tmp_m_;
  config->seeds = tmp_seeds_;
  config->freq = tmp_f_;
  config->dead = tmp_m_.empty() && tmp_f_.empty();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    const automata::NfaState& st = mfa_.nfa[tmp_m_[i]];
    if (st.afa_entry != kNoState) {
      config->any_annotated = true;
      config->annotated.push_back({static_cast<int>(i), st.afa_entry});
    }
    if (st.is_final) {
      config->has_final = true;
      config->final_mstates.push_back(static_cast<int>(i));
    }
  }
  for (size_t j = 0; j < tmp_f_.size(); ++j) {
    const AfaState& a = mfa_.afa[tmp_f_[j]];
    switch (a.kind) {
      case AfaKind::kFinal:
        config->finals.push_back(static_cast<int>(j));
        break;
      case AfaKind::kTrans:
        config->ftrans.push_back(
            {static_cast<int>(j), a.target, a.label, a.wildcard});
        break;
      default:
        config->has_ops = true;
        config->ops.push_back(static_cast<int>(j));
        for (StateId o : a.operands) {
          if (o >= tmp_f_[j]) config->needs_iteration = true;
        }
        break;
    }
  }
  ConfigId id = static_cast<ConfigId>(configs_.size());
  configs_.push_back(std::move(config));
  bucket.push_back(id);
  ++stats_.configs_interned;
  return id;
}

HypeEvaluator::ConfigId HypeEvaluator::ComputeTransition(ConfigId config,
                                                         LabelId tree_label,
                                                         int32_t eff_set) {
  const Config& cur = *configs_[config];

  // NextNFAStates: label move, then ε-closure; move targets are seeds.
  tmp_m_.clear();
  int32_t epoch = ++nfa_epoch_;
  for (StateId s : cur.mstates) {
    for (const NfaTransition& t : mfa_.nfa[s].trans) {
      if (t.wildcard ||
          (t.label != kNoLabel && binding_[t.label] == tree_label)) {
        if (nfa_mark_[t.to] != epoch) {
          nfa_mark_[t.to] = epoch;
          tmp_m_.push_back(t.to);
        }
      }
    }
  }
  size_t num_seeds = tmp_m_.size();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    for (StateId e : mfa_.nfa[tmp_m_[i]].eps) {
      if (nfa_mark_[e] != epoch) {
        nfa_mark_[e] = epoch;
        tmp_m_.push_back(e);
      }
    }
  }
  tagged_.clear();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    tagged_.push_back({tmp_m_[i], i < num_seeds ? char{1} : char{0}});
  }
  std::sort(tagged_.begin(), tagged_.end());
  tmp_seeds_.resize(tagged_.size());
  for (size_t i = 0; i < tagged_.size(); ++i) {
    tmp_m_[i] = tagged_[i].first;
    tmp_seeds_[i] = tagged_[i].second;
  }

  // NextAFAStates: transition moves, newly activated annotations, operator
  // closure.
  tmp_f_.clear();
  int32_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (StateId u : cur.freq) {
    const AfaState& a = mfa_.afa[u];
    if (a.kind == AfaKind::kTrans &&
        (a.wildcard ||
         (a.label != kNoLabel && binding_[a.label] == tree_label))) {
      add(a.target);
    }
  }
  for (StateId s : tmp_m_) {
    if (mfa_.nfa[s].afa_entry != kNoState) add(mfa_.nfa[s].afa_entry);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : mfa_.afa[tmp_f_[i]].operands) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  if (options_.index != nullptr) {
    const Productive& prod = ProductiveFor(eff_set);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachable(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }
  return InternConfig();
}

HypeEvaluator::ConfigId HypeEvaluator::Transition(ConfigId config,
                                                  LabelId tree_label,
                                                  int32_t eff_set) {
  Config& cur = *configs_[config];
  if (options_.index == nullptr) {
    if (cur.next.empty()) cur.next.assign(tree_.labels().size(), -1);
    ConfigId& slot = cur.next[tree_label];
    if (slot < 0) slot = ComputeTransition(config, tree_label, eff_set);
    return slot;
  }
  // Indexed modes: per (config, label), a short (label-set, successor) list.
  if (cur.next_by_eff.empty()) cur.next_by_eff.resize(tree_.labels().size());
  std::vector<std::pair<int32_t, ConfigId>>& slots = cur.next_by_eff[tree_label];
  for (const auto& [eff, next] : slots) {
    if (eff == eff_set) return next;
  }
  ConfigId next = ComputeTransition(config, tree_label, eff_set);
  // `cur` may have been invalidated only if configs_ grew -- the pointed-to
  // Config is heap-stable (unique_ptr), so `slots` stays valid.
  slots.emplace_back(eff_set, next);
  return next;
}

// One node of the single top-down pass. The node's configuration lives in
// FrameAt(depth); fvals (aligned with the config's freq) and cans vertices
// (aligned with its mstates) are left there for the caller.
//
// `in_region` says whether cans bookkeeping is active: outside a region no
// filter guards any run prefix, so final states emit answers directly and no
// vertices are allocated. A region opens at the first node whose mstates
// contain an annotated state; its label-move seeds become the region's
// initial vertices.
void HypeEvaluator::Visit(CansGraph* cans, xml::NodeId node, int depth,
                          bool in_region) {
  ++stats_.elements_visited;
  Frame& frame = FrameAt(depth);
  const Config& config = *configs_[frame.config];
  const std::vector<StateId>& mstates = config.mstates;
  const std::vector<StateId>& freq = config.freq;
  stats_.afa_state_requests += static_cast<int64_t>(freq.size());

  bool opens_region = !in_region && config.any_annotated;
  bool region = in_region || opens_region;

  frame.vertices.clear();
  if (region) {
    frame.vertices.resize(mstates.size());
    for (size_t i = 0; i < mstates.size(); ++i) {
      // When a region opens here, only the unconditionally-valid entry
      // points (label-move seeds / the NFA start at the context) may seed
      // phase two; everything else must be reached through recorded ε-edges
      // so a deleted guard disconnects what hides behind it.
      bool initial = opens_region && config.seeds[i] != 0;
      frame.vertices[i] = cans->AddVertex(initial);
    }
    for (size_t i = 0; i < mstates.size(); ++i) {
      for (StateId e : mfa_.nfa[mstates[i]].eps) {
        int j = IndexOf(mstates, e);
        if (j >= 0) cans->AddEdge(frame.vertices[i], frame.vertices[j]);
      }
    }
  }

  frame.fvals.assign(freq.size(), 0);

  for (xml::NodeId c = tree_.first_child(node); c != xml::kNullNode;
       c = tree_.next_sibling(c)) {
    if (!tree_.is_element(c)) continue;
    LabelId cl = tree_.label(c);

    int32_t eff_c = frame.eff_set;
    if (options_.index != nullptr) {
      eff_c = options_.index->EffectiveSet(c, frame.eff_set);
    }
    ConfigId next = Transition(frame.config, cl, eff_c);
    if (configs_[next]->dead) continue;  // prune the subtree

    Frame& child = FrameAt(depth + 1);
    child.config = next;
    child.eff_set = eff_c;
    Visit(cans, c, depth + 1, region);
    const Config& child_config = *configs_[next];

    if (region && !child.vertices.empty()) {
      // Label edges parent state --label(c)--> child state.
      for (size_t i = 0; i < mstates.size(); ++i) {
        for (const NfaTransition& t : mfa_.nfa[mstates[i]].trans) {
          if (!t.wildcard && (t.label == kNoLabel || binding_[t.label] != cl)) {
            continue;
          }
          int j = IndexOf(child_config.mstates, t.to);
          if (j >= 0) cans->AddEdge(frame.vertices[i], child.vertices[j]);
        }
      }
    }

    // fstates↑: fold the child's truths into this node's transition states.
    if (!child_config.freq.empty()) {
      for (const Config::FreqTrans& ft : config.ftrans) {
        if (frame.fvals[ft.idx]) continue;
        if (!ft.wildcard &&
            (ft.label == kNoLabel || binding_[ft.label] != cl)) {
          continue;
        }
        int k = PosOf(ft.target, child.pos_clock);
        if (k >= 0 && child.fvals[k]) frame.fvals[ft.idx] = 1;
      }
    }
  }

  // Pop: stamp this node's request positions, evaluate final-state
  // predicates, then run the same-node operator fixpoint.
  frame.pos_clock = ++afa_pos_clock_;
  if (!freq.empty()) {
    for (size_t j = 0; j < freq.size(); ++j) {
      afa_pos_[freq[j]] = static_cast<int32_t>(j);
      afa_pos_stamp_[freq[j]] = frame.pos_clock;
    }
    for (int j : config.finals) {
      frame.fvals[j] =
          automata::FinalPredHolds(mfa_.afa[freq[j]], tree_, node) ? 1 : 0;
    }
    // Operator fixpoint. Operands precede operators in the ascending sweep
    // except across Kleene-loop back-edges, so one sweep usually suffices;
    // with back-edges we iterate to the (stratified) fixpoint.
    bool changed = config.has_ops;
    while (changed) {
      changed = false;
      for (int j : config.ops) {
        const AfaState& a = mfa_.afa[freq[j]];
        char v;
        if (a.kind == AfaKind::kOr) {
          v = 0;
          for (StateId o : a.operands) {
            int k = PosOf(o, frame.pos_clock);
            if (k >= 0 && frame.fvals[k]) {
              v = 1;
              break;
            }
          }
        } else if (a.kind == AfaKind::kAnd) {
          v = 1;
          for (StateId o : a.operands) {
            int k = PosOf(o, frame.pos_clock);
            if (k < 0 || !frame.fvals[k]) {
              v = 0;
              break;
            }
          }
        } else {  // kNot
          int k = PosOf(a.operands[0], frame.pos_clock);
          v = (k < 0 || !frame.fvals[k]) ? 1 : 0;
        }
        if (v != frame.fvals[j]) {
          frame.fvals[j] = v;
          changed = true;
        }
      }
      if (!config.needs_iteration) break;
    }
  }

  // Delete vertices whose filter failed; report answers.
  if (region) {
    int32_t deleted_epoch = ++nfa_epoch2_;
    for (auto [i, entry] : config.annotated) {
      int k = PosOf(entry, frame.pos_clock);
      if (k < 0 || !frame.fvals[k]) {
        cans->DeleteVertex(frame.vertices[i]);
        nfa_mark2_[mstates[i]] = deleted_epoch;
      }
    }
    for (int i : config.final_mstates) {
      if (nfa_mark2_[mstates[i]] != deleted_epoch) {
        cans->SetAnswer(frame.vertices[i], node);
      }
    }
  } else if (config.has_final) {
    direct_answers_.push_back(node);
  }
}

std::vector<xml::NodeId> HypeEvaluator::Eval(xml::NodeId context) {
  stats_.elements_visited = 0;
  stats_.cans_vertices = 0;
  stats_.cans_edges = 0;
  stats_.afa_state_requests = 0;
  direct_answers_.clear();

  // Build the context configuration: ε-closure of the start state; the start
  // state itself is the only unconditional entry point.
  tmp_m_ = {mfa_.start};
  automata::EpsClosure(mfa_, &tmp_m_);
  tmp_seeds_.assign(tmp_m_.size(), 0);
  int si = IndexOf(tmp_m_, mfa_.start);
  if (si >= 0) tmp_seeds_[si] = 1;

  tmp_f_.clear();
  int32_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (StateId s : tmp_m_) {
    if (mfa_.nfa[s].afa_entry != kNoState) add(mfa_.nfa[s].afa_entry);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : mfa_.afa[tmp_f_[i]].operands) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  int32_t eff = 0;
  if (options_.index != nullptr) {
    eff = options_.index->SetForContext(tree_, context);
    const Productive& prod = ProductiveFor(eff);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachable(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }

  CansGraph cans;
  ConfigId root_config = InternConfig();
  if (!configs_[root_config]->dead) {
    Frame& root = FrameAt(0);
    root.config = root_config;
    root.eff_set = eff;
    Visit(&cans, context, 0, /*in_region=*/false);
  }
  stats_.cans_vertices = cans.num_vertices();
  stats_.cans_edges = cans.num_edges();

  std::vector<xml::NodeId> answers = cans.CollectAnswers();
  answers.insert(answers.end(), direct_answers_.begin(), direct_answers_.end());
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace smoqe::hype
