// Subtree-label index powering OptHyPE and OptHyPE-C (Section 6, "Variants
// of HyPE").
//
// For every tree node the index knows (an over-approximation of) the set of
// element labels occurring *strictly below* it. HyPE consults it before
// descending: a requested NFA/AFA state that cannot possibly reach an
// accepting configuration with only those labels is dropped, and a child
// with no surviving states is skipped entirely.
//
// Two storage modes:
//  - kFull (OptHyPE): one interned set id per node. Distinct sets are
//    hash-consed, so per-node storage is a single int32.
//  - kCompressed (OptHyPE-C): set ids are stored only for nodes whose subtree
//    has at least `threshold` elements; smaller subtrees inherit the nearest
//    indexed ancestor's set (a superset, hence sound). This shrinks the index
//    by roughly the threshold factor while keeping the pruning power where it
//    matters -- large subtrees.

#ifndef SMOQE_HYPE_INDEX_H_
#define SMOQE_HYPE_INDEX_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/name_table.h"
#include "xml/tree.h"

namespace smoqe::hype {

class SubtreeLabelIndex {
 public:
  enum class Mode { kFull, kCompressed };

  /// An empty index (not usable for evaluation); assign from Build().
  SubtreeLabelIndex() = default;

  static SubtreeLabelIndex Build(const xml::Tree& tree, Mode mode,
                                 int threshold = 16);

  /// Set id for labels strictly below `node`. `parent_effective` must be the
  /// effective set of the parent (use SetForContext at the evaluation
  /// context). O(1); in compressed mode a presence bitmap avoids hashing for
  /// the (majority of) nodes without their own entry.
  int32_t EffectiveSet(xml::NodeId node, int32_t parent_effective) const {
    if (mode_ == Mode::kFull) return per_node_[node];
    if (!(has_entry_[node / 64] >> (node % 64) & 1)) return parent_effective;
    return sparse_.find(node)->second;
  }

  /// Effective set for an arbitrary evaluation context. In compressed mode
  /// the nearest-indexed-ancestor walk is memoized per context node; the
  /// memo is read concurrently by every shard worker and the probe pass, so
  /// the hit path takes a SHARED lock (std::shared_mutex) and only a memo
  /// miss upgrades to the exclusive side. Thread-safe; copies of the index
  /// share the memo.
  int32_t SetForContext(const xml::Tree& tree, xml::NodeId context) const;

  bool Contains(int32_t set_id, LabelId tree_label) const {
    if (tree_label < 0 || tree_label >= num_labels_) return false;
    return (set_pool_[static_cast<size_t>(set_id) * words_ + tree_label / 64] >>
            (tree_label % 64)) &
           1;
  }

  /// True iff the set contains no element labels at all (leaf subtree).
  bool IsEmpty(int32_t set_id) const {
    for (int w = 0; w < words_; ++w) {
      if (set_pool_[static_cast<size_t>(set_id) * words_ + w] != 0) return false;
    }
    return true;
  }

  int num_distinct_sets() const {
    return words_ == 0 ? 0 : static_cast<int>(set_pool_.size() / words_);
  }

  /// Index memory footprint (the number the OptHyPE-C comparison is about).
  size_t MemoryBytes() const;

  Mode mode() const { return mode_; }

 private:
  // Context -> effective-set memo for the compressed mode's ancestor walk.
  // Heap-held behind a shared_ptr so the index stays copy/movable (Build
  // returns by value). Read-mostly: concurrent shard workers take the
  // shared side on hits, writers the exclusive side on the first walk per
  // context.
  struct ContextMemo {
    std::shared_mutex mu;
    std::unordered_map<xml::NodeId, int32_t> sets;
  };

  Mode mode_ = Mode::kFull;
  int num_labels_ = 0;
  int words_ = 0;
  std::vector<uint64_t> set_pool_;                  // num_sets x words_
  std::vector<int32_t> per_node_;                   // kFull
  std::unordered_map<xml::NodeId, int32_t> sparse_; // kCompressed
  std::vector<uint64_t> has_entry_;                 // kCompressed bitmap
  std::shared_ptr<ContextMemo> context_memo_;       // kCompressed
};

}  // namespace smoqe::hype

#endif  // SMOQE_HYPE_INDEX_H_
