#include "hype/cans.h"

#include <algorithm>

namespace smoqe::hype {

std::vector<xml::NodeId> CansGraph::CollectAnswers() const {
  std::vector<xml::NodeId> answers;

  if (num_deleted_ == 0) {
    // Every vertex was created by an actual run prefix and nothing was
    // disconnected: all recorded answers stand, no reachability needed.
    answers.reserve(answer_vertices_.size());
    for (VertexId v : answer_vertices_) answers.push_back(vertices_[v].answer);
  } else if (!answer_vertices_.empty()) {
    // Answer-driven reachability, O(|backward cone of the answers|) rather
    // than O(|graph|): mark every alive vertex that can reach an answer
    // (reverse walk), then forward-walk from the alive initial vertices
    // expanding only inside that cone.
    if (cone_.size() < vertices_.size()) cone_.resize(vertices_.size(), 0);
    if (seen_.size() < vertices_.size()) seen_.resize(vertices_.size(), 0);
    int64_t epoch = ++seen_epoch_;

    work_.clear();
    for (VertexId v : answer_vertices_) {
      // Answer vertices are never deleted (deletion and answer marking both
      // happen at the vertex's own node pop, deletions first).
      cone_[v] = epoch;
      work_.push_back(v);
    }
    while (!work_.empty()) {
      VertexId v = work_.back();
      work_.pop_back();
      for (int32_t e = vertices_[v].first_redge; e != -1; e = edges_[e].rnext) {
        VertexId from = edges_[e].from;
        if (cone_[from] != epoch && vertices_[from].alive) {
          cone_[from] = epoch;
          work_.push_back(from);
        }
      }
    }

    for (VertexId v : initials_) {
      if (vertices_[v].alive && cone_[v] == epoch && seen_[v] != epoch) {
        seen_[v] = epoch;
        work_.push_back(v);
      }
    }
    while (!work_.empty()) {
      VertexId v = work_.back();
      work_.pop_back();
      if (vertices_[v].answer != xml::kNullNode) {
        answers.push_back(vertices_[v].answer);
      }
      for (int32_t e = vertices_[v].first_edge; e != -1; e = edges_[e].next) {
        VertexId to = edges_[e].to;
        if (seen_[to] != epoch && cone_[to] == epoch && vertices_[to].alive) {
          seen_[to] = epoch;
          work_.push_back(to);
        }
      }
    }
  }

  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace smoqe::hype
