#include "hype/cans.h"

#include <algorithm>

namespace smoqe::hype {

std::vector<xml::NodeId> CansGraph::CollectAnswers() const {
  std::vector<xml::NodeId> answers;
  std::vector<bool> seen(vertices_.size(), false);
  std::vector<VertexId> work;
  for (VertexId v = 0; v < static_cast<VertexId>(vertices_.size()); ++v) {
    if (vertices_[v].initial && vertices_[v].alive) {
      seen[v] = true;
      work.push_back(v);
    }
  }
  while (!work.empty()) {
    VertexId v = work.back();
    work.pop_back();
    if (vertices_[v].answer != xml::kNullNode) {
      answers.push_back(vertices_[v].answer);
    }
    for (int32_t e = vertices_[v].first_edge; e != -1; e = edges_[e].next) {
      VertexId to = edges_[e].to;
      if (!seen[to] && vertices_[to].alive) {
        seen[to] = true;
        work.push_back(to);
      }
    }
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace smoqe::hype
