#include "hype/engine.h"

#include <algorithm>
#include <cassert>

#include "common/hashing.h"

namespace smoqe::hype {

using automata::AfaKind;
using automata::AfaState;
using automata::kNoState;
using automata::Mfa;
using automata::NfaTransition;

namespace {

// Index of `id` in the sorted vector, or -1.
int IndexOf(const std::vector<automata::StateId>& sorted, automata::StateId id) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
  if (it == sorted.end() || *it != id) return -1;
  return static_cast<int>(it - sorted.begin());
}

}  // namespace

HypeEngine::HypeEngine(const xml::Tree& tree, const Mfa& mfa,
                       HypeOptions options)
    : tree_(tree), mfa_(mfa), options_(options) {
  binding_.resize(mfa_.labels.size());
  for (LabelId l = 0; l < mfa_.labels.size(); ++l) {
    binding_[l] = tree_.labels().Lookup(mfa_.labels.name(l));
  }
  stats_.elements_total = tree_.CountElements();
  nfa_mark_.assign(mfa_.nfa.size(), 0);
  nfa_mark2_.assign(mfa_.nfa.size(), 0);
  afa_mark_.assign(mfa_.afa.size(), 0);
}

HypeEngine::Frame& HypeEngine::GrowFrames(int depth) {
  while (static_cast<int>(frames_.size()) <= depth) {
    frames_.push_back(std::make_unique<Frame>());
  }
  return *frames_[depth];
}

// After index-based filtering, drop every state that is no longer
// ε-reachable from a surviving seed: pruning may remove an annotated guard
// whose CanBeTrue is false, and states hiding behind it must disappear with
// it (otherwise they would look unguarded outside a cans region).
void HypeEngine::RestrictToSeedReachable(std::vector<StateId>* mstates,
                                         std::vector<char>* seeds) {
  int64_t member = ++nfa_epoch_;
  for (StateId s : *mstates) nfa_mark_[s] = member;
  int64_t reach = ++nfa_epoch2_;
  reach_work_.clear();
  for (size_t i = 0; i < mstates->size(); ++i) {
    if ((*seeds)[i]) {
      nfa_mark2_[(*mstates)[i]] = reach;
      reach_work_.push_back((*mstates)[i]);
    }
  }
  for (size_t i = 0; i < reach_work_.size(); ++i) {
    for (StateId e : mfa_.nfa[reach_work_[i]].eps) {
      if (nfa_mark_[e] == member && nfa_mark2_[e] != reach) {
        nfa_mark2_[e] = reach;
        reach_work_.push_back(e);
      }
    }
  }
  size_t w = 0;
  for (size_t i = 0; i < mstates->size(); ++i) {
    if (nfa_mark2_[(*mstates)[i]] == reach) {
      (*mstates)[w] = (*mstates)[i];
      (*seeds)[w] = (*seeds)[i];
      ++w;
    }
  }
  mstates->resize(w);
  seeds->resize(w);
}

const HypeEngine::Productive& HypeEngine::ProductiveFor(int32_t set_id) {
  auto it = productive_cache_.find(set_id);
  if (it != productive_cache_.end()) return it->second;

  const SubtreeLabelIndex& index = *options_.index;
  auto label_available = [&](LabelId mfa_label, bool wildcard) {
    if (wildcard) return !index.IsEmpty(set_id);
    LabelId t = binding_[mfa_label];
    return t != kNoLabel && index.Contains(set_id, t);
  };

  Productive prod;
  // CanBeTrue over AFA states: least fixpoint of a monotone system (NOT is
  // conservatively "can be true": its operand may be false below).
  prod.afa_cbt.assign(mfa_.afa.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < mfa_.afa.size(); ++s) {
      if (prod.afa_cbt[s]) continue;
      const AfaState& a = mfa_.afa[s];
      bool v = false;
      switch (a.kind) {
        case AfaKind::kFinal:
        case AfaKind::kNot:
          v = true;
          break;
        case AfaKind::kTrans:
          v = label_available(a.label, a.wildcard) && prod.afa_cbt[a.target];
          break;
        case AfaKind::kOr:
          for (StateId o : a.operands) v = v || prod.afa_cbt[o];
          break;
        case AfaKind::kAnd:
          v = true;
          for (StateId o : a.operands) v = v && prod.afa_cbt[o];
          break;
      }
      if (v) {
        prod.afa_cbt[s] = 1;
        changed = true;
      }
    }
  }

  // Selecting-state productivity: can reach a final state using available
  // labels, through states whose annotations can still be true.
  prod.sel.assign(mfa_.nfa.size(), 0);
  auto valid = [&](StateId s) {
    StateId e = mfa_.nfa[s].afa_entry;
    return e == kNoState || prod.afa_cbt[e];
  };
  changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < mfa_.nfa.size(); ++s) {
      if (prod.sel[s] || !valid(static_cast<StateId>(s))) continue;
      bool v = mfa_.nfa[s].is_final;
      for (const NfaTransition& t : mfa_.nfa[s].trans) {
        if (v) break;
        v = label_available(t.label, t.wildcard) && prod.sel[t.to];
      }
      for (StateId e : mfa_.nfa[s].eps) {
        if (v) break;
        v = prod.sel[e] != 0;
      }
      if (v) {
        prod.sel[s] = 1;
        changed = true;
      }
    }
  }
  return productive_cache_.emplace(set_id, std::move(prod)).first->second;
}

// Interns the configuration currently held in tmp_m_ / tmp_seeds_ / tmp_f_.
// All per-node lookups that depend only on the configuration are precomputed
// here: freq shape (finals / transition states / operator operand
// positions), annotated-state positions, and the intra-node ε-edge pairs.
HypeEngine::ConfigId HypeEngine::InternConfig() {
  uint64_t h = HashCombine(tmp_m_.size(), tmp_f_.size());
  for (StateId s : tmp_m_) h = HashCombine(h, static_cast<uint64_t>(s));
  for (char c : tmp_seeds_) h = HashCombine(h, static_cast<uint64_t>(c));
  for (StateId s : tmp_f_) h = HashCombine(h, static_cast<uint64_t>(s));
  std::vector<ConfigId>& bucket = config_buckets_[h];
  for (ConfigId id : bucket) {
    const Config& c = *configs_[id];
    if (c.mstates == tmp_m_ && c.seeds == tmp_seeds_ && c.freq == tmp_f_) {
      return id;
    }
  }
  auto config = std::make_unique<Config>();
  config->mstates = tmp_m_;
  config->seeds = tmp_seeds_;
  config->freq = tmp_f_;
  config->dead = tmp_m_.empty() && tmp_f_.empty();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    const automata::NfaState& st = mfa_.nfa[tmp_m_[i]];
    if (st.afa_entry != kNoState) {
      config->any_annotated = true;
      config->annotated.push_back(
          {static_cast<int>(i), IndexOf(tmp_f_, st.afa_entry)});
    }
    if (st.is_final) {
      config->has_final = true;
      config->final_mstates.push_back(static_cast<int>(i));
    }
    for (StateId e : st.eps) {
      int j = IndexOf(tmp_m_, e);
      if (j >= 0) config->eps_pairs.push_back({static_cast<int32_t>(i), j});
    }
  }
  for (size_t j = 0; j < tmp_f_.size(); ++j) {
    const AfaState& a = mfa_.afa[tmp_f_[j]];
    switch (a.kind) {
      case AfaKind::kFinal:
        config->finals.push_back(static_cast<int>(j));
        break;
      case AfaKind::kTrans:
        config->ftrans.push_back(
            {static_cast<int>(j), a.target, a.label, a.wildcard});
        break;
      default: {
        Config::OpSpec op;
        op.kind = a.kind;
        op.idx = static_cast<int>(j);
        op.begin = static_cast<int>(config->operand_pos.size());
        for (StateId o : a.operands) {
          config->operand_pos.push_back(IndexOf(tmp_f_, o));
          if (o >= tmp_f_[j]) config->needs_iteration = true;
        }
        op.end = static_cast<int>(config->operand_pos.size());
        config->ops.push_back(op);
        break;
      }
    }
  }
  ConfigId id = static_cast<ConfigId>(configs_.size());
  configs_.push_back(std::move(config));
  bucket.push_back(id);
  ++stats_.configs_interned;
  return id;
}

// Precomputes the parent→child edge data of one memoized transition: the
// cans label-edge pairs and the fstates↑ fold pairs. Returns -1 when both
// are empty (the common navigation case), so the pop path can skip the
// whole fold with one compare.
//
// When the child configuration has no annotated states, none of its vertices
// can ever be deleted, so its intra-node ε-edges are pure connectivity: the
// label edges are emitted ε-CLOSED (parent i → every child state reachable
// from the move target) and the per-node ε materialization is skipped
// entirely (see EnterNode). Annotated configurations keep the paper's exact
// wiring: a deleted guard must disconnect what hides behind it.
int32_t HypeEngine::InternAux(ConfigId from, LabelId tree_label, ConfigId to) {
  const Config& p = *configs_[from];
  const Config& c = *configs_[to];
  TransAux aux;
  // ε-adjacency of the child config (only needed for closure).
  std::vector<std::vector<int32_t>> adj;
  std::vector<char> reach;
  std::vector<int32_t> work;
  if (!c.any_annotated && !c.eps_pairs.empty()) {
    adj.resize(c.mstates.size());
    for (auto [i, j] : c.eps_pairs) adj[i].push_back(j);
  }
  for (size_t i = 0; i < p.mstates.size(); ++i) {
    reach.assign(c.mstates.size(), 0);
    for (const NfaTransition& t : mfa_.nfa[p.mstates[i]].trans) {
      if (!t.wildcard &&
          (t.label == kNoLabel || binding_[t.label] != tree_label)) {
        continue;
      }
      int j = IndexOf(c.mstates, t.to);
      if (j < 0 || reach[j]) continue;
      reach[j] = 1;
      aux.label_edges.push_back({static_cast<int32_t>(i), j});
      if (!adj.empty()) {
        work.assign(1, j);
        while (!work.empty()) {
          int32_t v = work.back();
          work.pop_back();
          for (int32_t e : adj[v]) {
            if (!reach[e]) {
              reach[e] = 1;
              aux.label_edges.push_back({static_cast<int32_t>(i), e});
              work.push_back(e);
            }
          }
        }
      }
    }
  }
  for (const Config::FreqTrans& ft : p.ftrans) {
    if (!ft.wildcard &&
        (ft.label == kNoLabel || binding_[ft.label] != tree_label)) {
      continue;
    }
    int k = IndexOf(c.freq, ft.target);
    if (k >= 0) aux.fold_pairs.push_back({ft.idx, k});
  }
  if (aux.label_edges.empty() && aux.fold_pairs.empty()) return -1;
  return InternAuxContent(std::move(aux));
}

int32_t HypeEngine::InternAuxContent(TransAux aux) {
  uint64_t h = HashCombine(aux.label_edges.size(), aux.fold_pairs.size());
  for (auto [i, j] : aux.label_edges) {
    h = HashCombine(h, (static_cast<uint64_t>(i) << 32) |
                           static_cast<uint32_t>(j));
  }
  for (auto [i, j] : aux.fold_pairs) {
    h = HashCombine(h, ~((static_cast<uint64_t>(i) << 32) |
                         static_cast<uint32_t>(j)));
  }
  std::vector<int32_t>& bucket = aux_buckets_[h];
  for (int32_t id : bucket) {
    if (trans_aux_[id].label_edges == aux.label_edges &&
        trans_aux_[id].fold_pairs == aux.fold_pairs) {
      return id;
    }
  }
  trans_aux_.push_back(std::move(aux));
  int32_t id = static_cast<int32_t>(trans_aux_.size()) - 1;
  bucket.push_back(id);
  return id;
}

// Composition of two edge mappings, for wiring a materialized node to its
// nearest materialized ancestor across barren pass-through nodes. Content
// interning makes repeated compositions along uniform chains (Kleene stars
// over recursive data) converge to a fixed id, so the memo stays tiny even
// on 100k-deep documents.
int32_t HypeEngine::ComposeAux(int32_t a, int32_t b) {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                 static_cast<uint32_t>(b);
  auto it = compose_memo_.find(key);
  if (it != compose_memo_.end()) return it->second;

  const std::vector<std::pair<int32_t, int32_t>>& ab = trans_aux_[a].label_edges;
  const std::vector<std::pair<int32_t, int32_t>>& bc = trans_aux_[b].label_edges;
  // Small relational join: group bc by source, then map ab through it.
  TransAux out;
  for (auto [i, j] : ab) {
    for (auto [j2, k] : bc) {
      if (j2 != j) continue;
      bool dup = false;
      for (auto [oi, ok] : out.label_edges) {
        if (oi == i && ok == k) {
          dup = true;
          break;
        }
      }
      if (!dup) out.label_edges.push_back({i, k});
    }
  }
  int32_t id = out.label_edges.empty() ? -1 : InternAuxContent(std::move(out));
  compose_memo_.emplace(key, id);
  return id;
}

HypeEngine::SuccRef HypeEngine::ComputeTransition(ConfigId config,
                                                  LabelId tree_label,
                                                  int32_t eff_set) {
  const Config& cur = *configs_[config];

  // NextNFAStates: label move, then ε-closure; move targets are seeds.
  tmp_m_.clear();
  int64_t epoch = ++nfa_epoch_;
  for (StateId s : cur.mstates) {
    for (const NfaTransition& t : mfa_.nfa[s].trans) {
      if (t.wildcard ||
          (t.label != kNoLabel && binding_[t.label] == tree_label)) {
        if (nfa_mark_[t.to] != epoch) {
          nfa_mark_[t.to] = epoch;
          tmp_m_.push_back(t.to);
        }
      }
    }
  }
  size_t num_seeds = tmp_m_.size();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    for (StateId e : mfa_.nfa[tmp_m_[i]].eps) {
      if (nfa_mark_[e] != epoch) {
        nfa_mark_[e] = epoch;
        tmp_m_.push_back(e);
      }
    }
  }
  tagged_.clear();
  for (size_t i = 0; i < tmp_m_.size(); ++i) {
    tagged_.push_back({tmp_m_[i], i < num_seeds ? char{1} : char{0}});
  }
  std::sort(tagged_.begin(), tagged_.end());
  tmp_seeds_.resize(tagged_.size());
  for (size_t i = 0; i < tagged_.size(); ++i) {
    tmp_m_[i] = tagged_[i].first;
    tmp_seeds_[i] = tagged_[i].second;
  }

  // NextAFAStates: transition moves, newly activated annotations, operator
  // closure.
  tmp_f_.clear();
  int64_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (StateId u : cur.freq) {
    const AfaState& a = mfa_.afa[u];
    if (a.kind == AfaKind::kTrans &&
        (a.wildcard ||
         (a.label != kNoLabel && binding_[a.label] == tree_label))) {
      add(a.target);
    }
  }
  for (StateId s : tmp_m_) {
    if (mfa_.nfa[s].afa_entry != kNoState) add(mfa_.nfa[s].afa_entry);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : mfa_.afa[tmp_f_[i]].operands) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  if (options_.index != nullptr) {
    const Productive& prod = ProductiveFor(eff_set);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachable(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }
  SuccRef succ;
  succ.config = InternConfig();
  succ.aux = InternAux(config, tree_label, succ.config);
  return succ;
}

HypeEngine::SuccRef HypeEngine::PeekTransition(int32_t config,
                                               LabelId tree_label,
                                               int32_t eff_set) {
  Config& cur = *configs_[config];
  if (options_.index == nullptr) {
    if (cur.next.empty()) cur.next.assign(tree_.labels().size(), SuccRef{});
    SuccRef& slot = cur.next[tree_label];
    if (slot.config < 0) slot = ComputeTransition(config, tree_label, eff_set);
    return slot;
  }
  // Indexed modes: per (config, label), a short (label-set, successor) list.
  if (cur.next_by_eff.empty()) cur.next_by_eff.resize(tree_.labels().size());
  std::vector<std::pair<int32_t, SuccRef>>& slots = cur.next_by_eff[tree_label];
  for (const auto& [eff, next] : slots) {
    if (eff == eff_set) return next;
  }
  SuccRef next = ComputeTransition(config, tree_label, eff_set);
  // `cur` may have been invalidated only if configs_ grew -- the pointed-to
  // Config is heap-stable (unique_ptr), so `slots` stays valid.
  slots.emplace_back(eff_set, next);
  return next;
}

// Probes the full transition row of a simple configuration once and caches
// which labels actually move it. Self-loop labels are TRANSPARENT: a node
// carrying one neither prunes, nor answers (has_final is a property of the
// configuration, which does not change), nor alters any descendant's
// behavior -- the jump drivers rely on exactly this to skip such positions
// without replaying them. The probe itself goes through the memoized
// PeekTransition, so it shares (and warms) the lazy tables the traversal
// uses; it may intern configurations a pruned-only pass would never reach,
// which is why configs_interned is excluded from the bit-identity contract.
std::span<const LabelId> HypeEngine::RelevantLabels(int32_t config) {
  Config& cur = *configs_[config];
  if (cur.relevant_ready) return cur.relevant;
  assert(options_.index == nullptr &&
         "relevant labels are only well-defined without an index");
  const LabelId num_labels = static_cast<LabelId>(tree_.labels().size());
  std::vector<LabelId> relevant;
  for (LabelId l = 0; l < num_labels; ++l) {
    if (PeekTransition(config, l, 0).config != config) relevant.push_back(l);
  }
  // PeekTransition may grow configs_, but the pointed-to Config is
  // heap-stable (unique_ptr), so `cur` remains valid.
  cur.relevant = std::move(relevant);
  cur.relevant_ready = true;
  return cur.relevant;
}

int32_t HypeEngine::PrepareRoot(xml::NodeId context) {
  stats_.elements_visited = 0;
  stats_.cans_vertices = 0;
  stats_.cans_edges = 0;
  stats_.afa_state_requests = 0;
  direct_answers_.clear();
  cans_.Reset();
  depth_ = -1;

  // The context configuration depends only on the context node (and the
  // index, which is fixed): repeated evaluations skip the closure rebuild.
  auto cached = root_config_cache_.find(context);
  if (cached != root_config_cache_.end()) return cached->second;

  // Build the context configuration: ε-closure of the start state; the start
  // state itself is the only unconditional entry point.
  tmp_m_ = {mfa_.start};
  automata::EpsClosure(mfa_, &tmp_m_);
  tmp_seeds_.assign(tmp_m_.size(), 0);
  int si = IndexOf(tmp_m_, mfa_.start);
  if (si >= 0) tmp_seeds_[si] = 1;

  tmp_f_.clear();
  int64_t fepoch = ++afa_epoch_;
  auto add = [&](StateId s) {
    if (afa_mark_[s] != fepoch) {
      afa_mark_[s] = fepoch;
      tmp_f_.push_back(s);
    }
  };
  for (StateId s : tmp_m_) {
    if (mfa_.nfa[s].afa_entry != kNoState) add(mfa_.nfa[s].afa_entry);
  }
  for (size_t i = 0; i < tmp_f_.size(); ++i) {
    for (StateId o : mfa_.afa[tmp_f_[i]].operands) add(o);
  }
  std::sort(tmp_f_.begin(), tmp_f_.end());

  if (options_.index != nullptr) {
    int32_t eff = options_.index->SetForContext(tree_, context);
    const Productive& prod = ProductiveFor(eff);
    size_t w = 0;
    for (size_t i = 0; i < tmp_m_.size(); ++i) {
      if (prod.sel[tmp_m_[i]]) {
        tmp_m_[w] = tmp_m_[i];
        tmp_seeds_[w] = tmp_seeds_[i];
        ++w;
      }
    }
    tmp_m_.resize(w);
    tmp_seeds_.resize(w);
    RestrictToSeedReachable(&tmp_m_, &tmp_seeds_);
    std::erase_if(tmp_f_, [&](StateId u) { return !prod.afa_cbt[u]; });
  }

  ConfigId root_config = InternConfig();
  int32_t result = configs_[root_config]->dead ? -1 : root_config;
  root_config_cache_.emplace(context, result);
  return result;
}

bool HypeEngine::Start(xml::NodeId context) {
  int32_t root_config = PrepareRoot(context);
  if (root_config < 0) return false;
  BeginFrames(root_config);
  return true;
}

void HypeEngine::BeginFrames(int32_t config) {
  assert(depth_ == -1);
  Frame& bottom = FrameAt(0);
  bottom.config = config;
  bottom.aux = -1;
  bottom.entered_in_region = false;
  depth_ = 0;
  EnterNode();
}

void HypeEngine::DescendWith(SuccRef succ) {
  assert(depth_ >= 0);
  Frame& frame = *frames_[depth_];
  Frame& child = FrameAt(depth_ + 1);
  child.config = succ.config;
  child.aux = succ.aux;
  child.entered_in_region = frame.region;
  ++depth_;
  EnterNode();
}

bool HypeEngine::DescendInto(LabelId child_label, int32_t child_eff_set) {
  SuccRef succ =
      PeekTransition(frames_[depth_]->config, child_label, child_eff_set);
  if (configs_[succ.config]->dead) return false;  // prune the subtree
  DescendWith(succ);
  return true;
}

// Prologue of one node of the pass. The node's configuration lives in the
// frame at the current depth; fvals (aligned with the config's freq) and
// cans vertices (aligned with its mstates) are initialized here.
//
// frame.region says whether cans bookkeeping is active: outside a region no
// filter guards any run prefix, so final states emit answers directly and no
// vertices are allocated. A region opens at the first node whose mstates
// contain an annotated state; its label-move seeds become the region's
// initial vertices.
void HypeEngine::EnterNode() {
  ++stats_.elements_visited;
  Frame& frame = *frames_[depth_];
  const Config& config = *configs_[frame.config];
  stats_.afa_state_requests += static_cast<int64_t>(config.freq.size());

  bool opens_region = !frame.entered_in_region && config.any_annotated;
  frame.region = frame.entered_in_region || opens_region;

  frame.vcount = 0;
  frame.eff_aux = -1;
  if (frame.region) {
    // Resolve the incoming cans edge mapping: from the parent directly, or
    // composed across barren pass-through ancestors.
    if (frame.entered_in_region && frame.aux >= 0) {
      const Frame& parent = *frames_[depth_ - 1];
      if (parent.vcount > 0) {
        frame.eff_aux = frame.aux;
        frame.eff_vbase = parent.vbase;
      } else if (parent.eff_aux >= 0) {
        frame.eff_aux = ComposeAux(parent.eff_aux, frame.aux);
        frame.eff_vbase = parent.eff_vbase;
      }
    }
    // Only vertices that can be deleted (annotated) or can carry answers
    // (final) must materialize; connectivity through barren nodes is wired
    // directly via the composed mappings, and their ε-closure is already
    // folded into the transition's label edges (InternAux).
    if ((config.any_annotated || config.has_final) && !config.mstates.empty()) {
      frame.vcount = static_cast<int32_t>(config.mstates.size());
      frame.vbase = cans_.AddVertexRange(frame.vcount);
      if (opens_region) {
        // When a region opens here, only the unconditionally-valid entry
        // points (label-move seeds / the NFA start at the context) may seed
        // phase two; everything else must be reached through recorded
        // ε-edges so a deleted guard disconnects what hides behind it.
        for (int32_t i = 0; i < frame.vcount; ++i) {
          if (config.seeds[i]) cans_.MarkInitial(frame.vbase + i);
        }
      }
      if (config.any_annotated) {
        for (auto [i, j] : config.eps_pairs) {
          cans_.AddEdge(frame.vbase + i, frame.vbase + j);
        }
      }
    }
  }

  if (!config.freq.empty() || !frame.fvals.empty()) {
    frame.fvals.assign(config.freq.size(), 0);
  }
}

// Epilogue: evaluate final-state predicates, run the same-node operator
// fixpoint, delete vertices whose filter failed, report answers -- then fold
// this node's results into the parent frame through the precomputed edge
// data (the work the recursive Visit did after the child returned).
void HypeEngine::ExitNode(xml::NodeId node) {
  Frame& frame = *frames_[depth_];
  const Config& config = *configs_[frame.config];
  const std::vector<StateId>& freq = config.freq;

  if (!freq.empty()) {
    const xml::DocPlane* plane = options_.plane;
    for (int j : config.finals) {
      const AfaState& a = mfa_.afa[freq[j]];
      // Text-presence prefilter: no text child (one plane bit) means a
      // text() = 'c' predicate cannot hold -- skip the child walk and the
      // string compares of Tree::HasText.
      if (a.pred == automata::PredKind::kTextEquals && plane != nullptr &&
          !plane->has_text(plane->pos_of(node))) {
        frame.fvals[j] = 0;
        continue;
      }
      frame.fvals[j] = automata::FinalPredHolds(a, tree_, node) ? 1 : 0;
    }
    // Operator fixpoint. Operands precede operators in the ascending sweep
    // except across Kleene-loop back-edges, so one sweep usually suffices;
    // with back-edges we iterate to the (stratified) fixpoint. A pruned
    // operand (position -1) reads as false.
    bool changed = !config.ops.empty();
    while (changed) {
      changed = false;
      for (const Config::OpSpec& op : config.ops) {
        char v;
        if (op.kind == AfaKind::kOr) {
          v = 0;
          for (int p = op.begin; p < op.end; ++p) {
            int k = config.operand_pos[p];
            if (k >= 0 && frame.fvals[k]) {
              v = 1;
              break;
            }
          }
        } else if (op.kind == AfaKind::kAnd) {
          v = 1;
          for (int p = op.begin; p < op.end; ++p) {
            int k = config.operand_pos[p];
            if (k < 0 || !frame.fvals[k]) {
              v = 0;
              break;
            }
          }
        } else {  // kNot
          int k = config.operand_pos[op.begin];
          v = (k < 0 || !frame.fvals[k]) ? 1 : 0;
        }
        if (v != frame.fvals[op.idx]) {
          frame.fvals[op.idx] = v;
          changed = true;
        }
      }
      if (!config.needs_iteration) break;
    }
  }

  // Delete vertices whose filter failed; report answers.
  if (frame.region) {
    const std::vector<StateId>& mstates = config.mstates;
    int64_t deleted_epoch = ++nfa_epoch2_;
    for (auto [i, pos] : config.annotated) {
      if (pos < 0 || !frame.fvals[pos]) {
        cans_.DeleteVertex(frame.vbase + i);
        nfa_mark2_[mstates[i]] = deleted_epoch;
      }
    }
    for (int i : config.final_mstates) {
      if (nfa_mark2_[mstates[i]] != deleted_epoch) {
        cans_.SetAnswer(frame.vbase + i, node);
      }
    }
  } else if (config.has_final) {
    direct_answers_.push_back(node);
  }

  // Label edges nearest-materialized-ancestor state --...--> this node's
  // state (composed across barren pass-through nodes).
  if (frame.vcount > 0 && frame.eff_aux >= 0) {
    for (auto [i, j] : trans_aux_[frame.eff_aux].label_edges) {
      cans_.AddEdge(frame.eff_vbase + i, frame.vbase + j);
    }
  }
  if (depth_ > 0 && frame.aux >= 0) {
    Frame& parent = *frames_[depth_ - 1];
    // fstates↑: fold this node's truths into the parent's transition states.
    for (auto [idx, k] : trans_aux_[frame.aux].fold_pairs) {
      if (!parent.fvals[idx] && frame.fvals[k]) parent.fvals[idx] = 1;
    }
  }
  --depth_;
}

std::vector<xml::NodeId> HypeEngine::TakeAnswers() {
  stats_.cans_vertices = cans_.num_vertices();
  stats_.cans_edges = cans_.num_edges();
  std::vector<xml::NodeId> answers = cans_.CollectAnswers();
  answers.insert(answers.end(), direct_answers_.begin(), direct_answers_.end());
  // Direct answers of navigation queries arrive in document order already
  // (pre-order emission, ids increase along the DFS): skip the sort then.
  if (!std::is_sorted(answers.begin(), answers.end())) {
    std::sort(answers.begin(), answers.end());
  }
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

SharedPassStats RunSharedPass(const xml::Tree& tree,
                              const xml::DocPlane& plane,
                              const SubtreeLabelIndex* index,
                              xml::NodeId context,
                              std::span<HypeEngine* const> engines,
                              bool enable_jump) {
  SharedPassStats pass;
  if (engines.empty()) return pass;

  // Per-frame live-engine lists and merged relevant-label sets live in
  // stack-disciplined arenas: a frame's slices are appended when it is
  // pushed and reclaimed at pop, so per-child work is proportional to the
  // engines actually live at the parent, not to the batch size.
  struct WalkFrame {
    int32_t pos;     // plane position of this node
    int32_t end;     // one past the last descendant position
    int32_t cursor;  // next position to consider inside (pos, end)
    int32_t eff_set;
    size_t live_begin;
    size_t live_end;
    bool jump;       // posting-driven scan: all live engines jump-safe
    bool owns_rel;   // frame appended its own rel_arena slice (vs shared)
    size_t rel_begin;
    size_t rel_end;
  };
  std::vector<WalkFrame> stack;
  stack.reserve(64);
  std::vector<uint32_t> live;
  live.reserve(engines.size() * 8);
  std::vector<LabelId> rel_arena;
  std::vector<int32_t> chain;  // candidate-ancestor scratch, bottom-up

  // Decides the scan mode of the frame just pushed (every live engine has
  // already descended into it): jump iff jump is allowed, there is no index
  // (transitions must not depend on per-node label sets), and every live
  // engine is jump-safe at its open frame; the frame then carries the union
  // of the live engines' relevant labels.
  auto decide_jump = [&](WalkFrame* f) {
    f->jump = false;
    f->owns_rel = false;
    f->rel_begin = f->rel_end = rel_arena.size();
    if (!enable_jump || index != nullptr) return;
    for (size_t k = f->live_begin; k < f->live_end; ++k) {
      const HypeEngine& e = *engines[live[k]];
      if (!e.ConfigJumpSafe(e.TopConfig(), e.TopFrameInRegion())) return;
    }
    for (size_t k = f->live_begin; k < f->live_end; ++k) {
      HypeEngine& e = *engines[live[k]];
      std::span<const LabelId> r = e.RelevantLabels(e.TopConfig());
      rel_arena.insert(rel_arena.end(), r.begin(), r.end());
    }
    std::sort(rel_arena.begin() + f->rel_begin, rel_arena.end());
    rel_arena.erase(
        std::unique(rel_arena.begin() + f->rel_begin, rel_arena.end()),
        rel_arena.end());
    // Density gate (cost model only -- answers identical either way): leap
    // only when the merged posting mass says most positions get skipped;
    // label-dense frames scan linearly, which is cheaper per position.
    int64_t posting_mass = 0;
    for (size_t r = f->rel_begin; r < rel_arena.size(); ++r) {
      posting_mass += static_cast<int64_t>(plane.postings(rel_arena[r]).size());
    }
    if (posting_mass * 4 >= plane.size()) {
      rel_arena.resize(f->rel_begin);
      return;
    }
    f->rel_end = rel_arena.size();
    f->owns_rel = true;
    f->jump = true;
  };

  const int32_t top_pos = plane.pos_of(context);
  const int32_t root_eff =
      index != nullptr ? index->SetForContext(tree, context) : 0;
  ++pass.nodes_walked;
  for (size_t i = 0; i < engines.size(); ++i) {
    live.push_back(static_cast<uint32_t>(i));  // Start() already entered
  }
  stack.push_back({top_pos, plane.end_of(top_pos), top_pos + 1, root_eff, 0,
                   live.size(), false, false, 0, 0});
  decide_jump(&stack.back());

  while (!stack.empty()) {
    WalkFrame& top = stack.back();

    // Locate the next position to enter: the cursor itself (full scan) or
    // the next posting of a relevant label (jump mode), bulk-accounting the
    // transparent positions leapt over.
    int32_t c = top.end;
    if (top.cursor < top.end) {
      if (!top.jump) {
        c = top.cursor;
      } else {
        int32_t next = top.end;
        for (size_t r = top.rel_begin; r < top.rel_end; ++r) {
          std::span<const int32_t> p = plane.postings(rel_arena[r]);
          auto it = std::lower_bound(p.begin(), p.end(), top.cursor);
          if (it != p.end() && *it < next) next = *it;
        }
        if (next >= top.end) {
          // The rest of the subtree is transparent: every skipped position
          // is one the full DFS would have entered without effect, so only
          // the visit counters need restoring.
          const int64_t skipped = top.end - top.cursor;
          pass.positions_jumped += skipped;
          for (size_t k = top.live_begin; k < top.live_end; ++k) {
            engines[live[k]]->AddVisited(skipped);
          }
          top.cursor = top.end;
        } else {
          // Reconstruct the enter/exit event stream for the candidate's
          // transparent ancestors (they all lie in [cursor, next): cursor
          // is a subtree frontier, so an ancestor below it would contain
          // the candidate in an already-closed subtree). Each gets a real
          // frame -- state transitions replay exactly as the full DFS
          // would -- sharing the parent's relevant set, since self-loops
          // leave every configuration unchanged.
          chain.clear();
          for (int32_t a = plane.parent(next); a != top.pos;
               a = plane.parent(a)) {
            chain.push_back(a);
          }
          const int64_t skipped =
              (next - top.cursor) - static_cast<int64_t>(chain.size());
          pass.positions_jumped += skipped;
          if (skipped > 0) {
            for (size_t k = top.live_begin; k < top.live_end; ++k) {
              engines[live[k]]->AddVisited(skipped);
            }
          }
          if (chain.empty()) {
            c = next;
          } else {
            for (size_t j = chain.size(); j-- > 0;) {
              const int32_t a = chain[j];
              WalkFrame& parent_frame = stack.back();
              const LabelId al = plane.label(a);
              const size_t child_begin = live.size();
              for (size_t k = parent_frame.live_begin;
                   k < parent_frame.live_end; ++k) {
                const uint32_t ei = live[k];
                const bool descended = engines[ei]->DescendInto(al, 0);
                assert(descended && "transparent label must not prune");
                (void)descended;
                live.push_back(ei);
              }
              parent_frame.cursor = plane.end_of(a);
              ++pass.nodes_walked;
              stack.push_back({a, plane.end_of(a),
                               j > 0 ? plane.end_of(chain[j - 1]) : next, 0,
                               child_begin, live.size(), true, false,
                               parent_frame.rel_begin,
                               parent_frame.rel_end});
            }
            // Resume at the deepest replayed frame; its jump scan finds the
            // candidate immediately (cursor == next).
            continue;
          }
        }
      }
    }

    if (c >= top.end) {
      for (size_t k = top.live_begin; k < top.live_end; ++k) {
        engines[live[k]]->ExitNode(plane.node_at(top.pos));
      }
      live.resize(top.live_begin);
      if (top.owns_rel) rel_arena.resize(top.rel_begin);
      stack.pop_back();
      continue;
    }

    // Decode the child and resolve its subtree label set once, for everyone.
    const LabelId cl = plane.label(c);
    const int32_t eff_c = index != nullptr
                              ? index->EffectiveSet(plane.node_at(c),
                                                    top.eff_set)
                              : top.eff_set;
    top.cursor = plane.end_of(c);

    const size_t child_begin = live.size();
    for (size_t k = top.live_begin; k < top.live_end; ++k) {
      const uint32_t ei = live[k];
      if (engines[ei]->DescendInto(cl, eff_c)) live.push_back(ei);
    }
    if (live.size() > child_begin) {
      ++pass.nodes_walked;
      stack.push_back({c, plane.end_of(c), c + 1, eff_c, child_begin,
                       live.size(), false, false, 0, 0});
      decide_jump(&stack.back());
    } else {
      ++pass.subtrees_skipped;  // every live engine pruned this subtree
    }
  }
  return pass;
}

}  // namespace smoqe::hype
