#include "hype/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "automata/afa.h"

namespace smoqe::hype {

using automata::AfaKind;
using automata::AfaState;
using automata::Mfa;

HypeEngine::HypeEngine(const xml::Tree& tree, const Mfa& mfa,
                       HypeOptions options)
    : tree_(tree), mfa_(mfa), options_(std::move(options)) {
  if (options_.transition_plane == nullptr) {
    options_.transition_plane = std::make_shared<TransitionPlane>(
        tree_, mfa_, nullptr, options_.index);
  }
  trans_ = options_.transition_plane.get();
  assert(trans_->index() == options_.index &&
         "shared transition plane must use the engine's index");
  stats_.elements_total = tree_.CountElements();
  nfa_deleted_mark_.assign(mfa_.nfa.size(), 0);
}

HypeEngine::Frame& HypeEngine::GrowFrames(int depth) {
  while (static_cast<int>(frames_.size()) <= depth) {
    frames_.push_back(std::make_unique<Frame>());
  }
  return *frames_[depth];
}

int32_t HypeEngine::PrepareRoot(xml::NodeId context) {
  stats_.elements_visited = 0;
  stats_.cans_vertices = 0;
  stats_.cans_edges = 0;
  stats_.afa_state_requests = 0;
  direct_answers_.clear();
  cans_.Reset();
  depth_ = -1;
  return trans_->ContextConfig(context, &stats_.configs_interned);
}

bool HypeEngine::Start(xml::NodeId context) {
  int32_t root_config = PrepareRoot(context);
  if (root_config < 0) return false;
  BeginFrames(root_config);
  return true;
}

void HypeEngine::BeginFrames(int32_t config) {
  assert(depth_ == -1);
  Frame& bottom = FrameAt(0);
  bottom.config = config;
  bottom.aux = -1;
  bottom.entered_in_region = false;
  depth_ = 0;
  EnterNode();
}

void HypeEngine::DescendWith(SuccRef succ) {
  assert(depth_ >= 0);
  Frame& frame = *frames_[depth_];
  Frame& child = FrameAt(depth_ + 1);
  child.config = succ.config;
  child.aux = succ.aux;
  child.entered_in_region = frame.region;
  ++depth_;
  EnterNode();
}

bool HypeEngine::DescendInto(LabelId child_label, int32_t child_eff_set) {
  SuccRef succ =
      PeekTransition(frames_[depth_]->config, child_label, child_eff_set);
  if (trans_->config(succ.config).dead) return false;  // prune the subtree
  DescendWith(succ);
  return true;
}

// Prologue of one node of the pass. The node's configuration lives in the
// frame at the current depth; fvals (aligned with the config's freq) and
// cans vertices (aligned with its mstates) are initialized here.
//
// frame.region says whether cans bookkeeping is active: outside a region no
// filter guards any run prefix, so final states emit answers directly and no
// vertices are allocated. A region opens at the first node whose mstates
// contain an annotated state; its label-move seeds become the region's
// initial vertices.
void HypeEngine::EnterNode() {
  ++stats_.elements_visited;
  Frame& frame = *frames_[depth_];
  const Config& config = trans_->config(frame.config);
  stats_.afa_state_requests += static_cast<int64_t>(config.freq.size());

  bool opens_region = !frame.entered_in_region && config.any_annotated;
  frame.region = frame.entered_in_region || opens_region;

  frame.vcount = 0;
  frame.eff_aux = -1;
  if (frame.region) {
    // Resolve the incoming cans edge mapping: from the parent directly, or
    // composed across barren pass-through ancestors.
    if (frame.entered_in_region && frame.aux >= 0) {
      const Frame& parent = *frames_[depth_ - 1];
      if (parent.vcount > 0) {
        frame.eff_aux = frame.aux;
        frame.eff_vbase = parent.vbase;
      } else if (parent.eff_aux >= 0) {
        frame.eff_aux = ComposeAuxCached(parent.eff_aux, frame.aux);
        frame.eff_vbase = parent.eff_vbase;
      }
    }
    // Only vertices that can be deleted (annotated) or can carry answers
    // (final) must materialize; connectivity through barren nodes is wired
    // directly via the composed mappings, and their ε-closure is already
    // folded into the transition's label edges (InternAux).
    if ((config.any_annotated || config.has_final) && !config.mstates.empty()) {
      frame.vcount = static_cast<int32_t>(config.mstates.size());
      frame.vbase = cans_.AddVertexRange(frame.vcount);
      if (opens_region) {
        // When a region opens here, only the unconditionally-valid entry
        // points (label-move seeds / the NFA start at the context) may seed
        // phase two; everything else must be reached through recorded
        // ε-edges so a deleted guard disconnects what hides behind it.
        for (int32_t i = 0; i < frame.vcount; ++i) {
          if (config.seeds[i]) cans_.MarkInitial(frame.vbase + i);
        }
      }
      if (config.any_annotated) {
        for (auto [i, j] : config.eps_pairs) {
          cans_.AddEdge(frame.vbase + i, frame.vbase + j);
        }
      }
    }
  }

  if (!config.freq.empty() || !frame.fvals.empty()) {
    frame.fvals.assign(config.freq.size(), 0);
  }
}

// Epilogue: evaluate final-state predicates, run the same-node operator
// fixpoint, delete vertices whose filter failed, report answers -- then fold
// this node's results into the parent frame through the precomputed edge
// data (the work the recursive Visit did after the child returned).
void HypeEngine::ExitNode(xml::NodeId node) {
  Frame& frame = *frames_[depth_];
  const Config& config = trans_->config(frame.config);
  const std::vector<StateId>& freq = config.freq;

  if (!freq.empty()) {
    const xml::DocPlane* plane = options_.plane;
    for (int j : config.finals) {
      const AfaState& a = mfa_.afa[freq[j]];
      // Text-presence prefilter: no text child (one plane bit) means a
      // text() = 'c' predicate cannot hold -- skip the child walk and the
      // string compares of Tree::HasText.
      if (a.pred == automata::PredKind::kTextEquals && plane != nullptr &&
          !plane->has_text(plane->pos_of(node))) {
        frame.fvals[j] = 0;
        continue;
      }
      frame.fvals[j] = automata::FinalPredHolds(a, tree_, node) ? 1 : 0;
    }
    // Operator fixpoint. The ops sweep is in the CompiledMfa's stratified
    // order: operands precede operators except across genuine Kleene
    // cycles, where needs_iteration drives the loop to the (stratified)
    // fixpoint. A pruned operand (position -1) reads as false.
    bool changed = !config.ops.empty();
    while (changed) {
      changed = false;
      for (const Config::OpSpec& op : config.ops) {
        char v;
        if (op.kind == AfaKind::kOr) {
          v = 0;
          for (int p = op.begin; p < op.end; ++p) {
            int k = config.operand_pos[p];
            if (k >= 0 && frame.fvals[k]) {
              v = 1;
              break;
            }
          }
        } else if (op.kind == AfaKind::kAnd) {
          v = 1;
          for (int p = op.begin; p < op.end; ++p) {
            int k = config.operand_pos[p];
            if (k < 0 || !frame.fvals[k]) {
              v = 0;
              break;
            }
          }
        } else {  // kNot
          int k = config.operand_pos[op.begin];
          v = (k < 0 || !frame.fvals[k]) ? 1 : 0;
        }
        if (v != frame.fvals[op.idx]) {
          frame.fvals[op.idx] = v;
          changed = true;
        }
      }
      if (!config.needs_iteration) break;
    }
  }

  // Delete vertices whose filter failed; report answers.
  if (frame.region) {
    const std::vector<StateId>& mstates = config.mstates;
    int64_t deleted_epoch = ++nfa_deleted_epoch_;
    for (auto [i, pos] : config.annotated) {
      if (pos < 0 || !frame.fvals[pos]) {
        cans_.DeleteVertex(frame.vbase + i);
        nfa_deleted_mark_[mstates[i]] = deleted_epoch;
      }
    }
    for (int i : config.final_mstates) {
      if (nfa_deleted_mark_[mstates[i]] != deleted_epoch) {
        cans_.SetAnswer(frame.vbase + i, node);
      }
    }
  } else if (config.has_final) {
    direct_answers_.push_back(node);
  }

  // Label edges nearest-materialized-ancestor state --...--> this node's
  // state (composed across barren pass-through nodes).
  if (frame.vcount > 0 && frame.eff_aux >= 0) {
    for (auto [i, j] : trans_->aux(frame.eff_aux).label_edges) {
      cans_.AddEdge(frame.eff_vbase + i, frame.vbase + j);
    }
  }
  if (depth_ > 0 && frame.aux >= 0) {
    Frame& parent = *frames_[depth_ - 1];
    // fstates↑: fold this node's truths into the parent's transition states.
    for (auto [idx, k] : trans_->aux(frame.aux).fold_pairs) {
      if (!parent.fvals[idx] && frame.fvals[k]) parent.fvals[idx] = 1;
    }
  }
  --depth_;
}

std::vector<xml::NodeId> HypeEngine::TakeAnswers() {
  stats_.cans_vertices = cans_.num_vertices();
  stats_.cans_edges = cans_.num_edges();
  std::vector<xml::NodeId> answers = cans_.CollectAnswers();
  answers.insert(answers.end(), direct_answers_.begin(), direct_answers_.end());
  // Direct answers of navigation queries arrive in document order already
  // when node ids follow the DFS (pre-order emission): skip the sort then.
  if (!std::is_sorted(answers.begin(), answers.end())) {
    const size_t words = (static_cast<size_t>(tree_.size()) + 63) / 64;
    if (answers.size() >= 64 && answers.size() * 8 >= words) {
      // Dense answer sets (label-dense navigation emits answers at a sizable
      // fraction of all nodes) sort via a bitmap over the id space: O(n +
      // |T|/64) instead of O(n log n), and deduplication falls out of the
      // bits. This was the single hottest piece of the dense batch profile.
      answer_bits_.assign(words, 0);
      for (xml::NodeId id : answers) {
        answer_bits_[static_cast<size_t>(id) >> 6] |=
            uint64_t{1} << (id & 63);
      }
      answers.clear();
      for (size_t w = 0; w < words; ++w) {
        uint64_t bits = answer_bits_[w];
        while (bits != 0) {
          int b = std::countr_zero(bits);
          bits &= bits - 1;
          answers.push_back(static_cast<xml::NodeId>((w << 6) | b));
        }
      }
      return answers;
    }
    std::sort(answers.begin(), answers.end());
  }
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

SharedPassStats RunSharedPass(const xml::Tree& tree,
                              const xml::DocPlane& plane,
                              const SubtreeLabelIndex* index,
                              xml::NodeId context,
                              std::span<HypeEngine* const> engines,
                              bool enable_jump,
                              EvalGate* gate) {
  SharedPassStats pass;
  if (engines.empty()) return pass;

  // Per-frame live-engine lists and merged relevant-label sets live in
  // stack-disciplined arenas: a frame's slices are appended when it is
  // pushed and reclaimed at pop, so per-child work is proportional to the
  // engines actually live at the parent, not to the batch size.
  struct WalkFrame {
    int32_t pos;     // plane position of this node
    int32_t end;     // one past the last descendant position
    int32_t cursor;  // next position to consider inside (pos, end)
    int32_t eff_set;
    size_t live_begin;
    size_t live_end;
    bool jump;       // posting-driven scan: all live engines jump-safe
    bool owns_rel;   // frame appended its own rel_arena slice (vs shared)
    size_t rel_begin;
    size_t rel_end;
  };
  std::vector<WalkFrame> stack;
  stack.reserve(64);
  std::vector<uint32_t> live;
  live.reserve(engines.size() * 8);
  std::vector<LabelId> rel_arena;
  std::vector<int32_t> chain;  // candidate-ancestor scratch, bottom-up

  // Decides the scan mode of the frame just pushed (every live engine has
  // already descended into it): jump iff jump is allowed, there is no index
  // (transitions must not depend on per-node label sets), and every live
  // engine is jump-safe at its open frame; the frame then carries the union
  // of the live engines' relevant labels.
  auto decide_jump = [&](WalkFrame* f) {
    f->jump = false;
    f->owns_rel = false;
    f->rel_begin = f->rel_end = rel_arena.size();
    if (!enable_jump || index != nullptr) return;
    for (size_t k = f->live_begin; k < f->live_end; ++k) {
      const HypeEngine& e = *engines[live[k]];
      if (!e.ConfigJumpSafe(e.TopConfig(), e.TopFrameInRegion())) return;
    }
    for (size_t k = f->live_begin; k < f->live_end; ++k) {
      HypeEngine& e = *engines[live[k]];
      std::span<const LabelId> r = e.RelevantLabels(e.TopConfig());
      rel_arena.insert(rel_arena.end(), r.begin(), r.end());
    }
    std::sort(rel_arena.begin() + f->rel_begin, rel_arena.end());
    rel_arena.erase(
        std::unique(rel_arena.begin() + f->rel_begin, rel_arena.end()),
        rel_arena.end());
    // Density gate (cost model only -- answers identical either way): leap
    // only when the merged posting mass says most positions get skipped;
    // label-dense frames scan linearly, which is cheaper per position.
    int64_t posting_mass = 0;
    for (size_t r = f->rel_begin; r < rel_arena.size(); ++r) {
      posting_mass += static_cast<int64_t>(plane.postings(rel_arena[r]).size());
    }
    if (posting_mass * 4 >= plane.size()) {
      rel_arena.resize(f->rel_begin);
      return;
    }
    f->rel_end = rel_arena.size();
    f->owns_rel = true;
    f->jump = true;
  };

  const int32_t top_pos = plane.pos_of(context);
  const int32_t root_eff =
      index != nullptr ? index->SetForContext(tree, context) : 0;
  ++pass.nodes_walked;
  for (size_t i = 0; i < engines.size(); ++i) {
    live.push_back(static_cast<uint32_t>(i));  // Start() already entered
  }
  stack.push_back({top_pos, plane.end_of(top_pos), top_pos + 1, root_eff, 0,
                   live.size(), false, false, 0, 0});
  decide_jump(&stack.back());

  while (!stack.empty()) {
    // One poll per walk step bounds cancellation latency: a step enters at
    // most one node, so an abort lands within `checkpoint_interval` node
    // entries of the cancel/deadline event. Partial engine state is simply
    // abandoned -- the caller discards answers and the next Start() resets.
    if (gate != nullptr && !gate->Poll()) return pass;

    WalkFrame& top = stack.back();

    // Locate the next position to enter: the cursor itself (full scan) or
    // the next posting of a relevant label (jump mode), bulk-accounting the
    // transparent positions leapt over.
    int32_t c = top.end;
    if (top.cursor < top.end) {
      if (!top.jump) {
        c = top.cursor;
      } else {
        int32_t next = top.end;
        for (size_t r = top.rel_begin; r < top.rel_end; ++r) {
          std::span<const int32_t> p = plane.postings(rel_arena[r]);
          auto it = std::lower_bound(p.begin(), p.end(), top.cursor);
          if (it != p.end() && *it < next) next = *it;
        }
        if (next >= top.end) {
          // The rest of the subtree is transparent: every skipped position
          // is one the full DFS would have entered without effect, so only
          // the visit counters need restoring.
          const int64_t skipped = top.end - top.cursor;
          pass.positions_jumped += skipped;
          for (size_t k = top.live_begin; k < top.live_end; ++k) {
            engines[live[k]]->AddVisited(skipped);
          }
          top.cursor = top.end;
        } else {
          // Reconstruct the enter/exit event stream for the candidate's
          // transparent ancestors (they all lie in [cursor, next): cursor
          // is a subtree frontier, so an ancestor below it would contain
          // the candidate in an already-closed subtree). Each gets a real
          // frame -- state transitions replay exactly as the full DFS
          // would -- sharing the parent's relevant set, since self-loops
          // leave every configuration unchanged.
          chain.clear();
          for (int32_t a = plane.parent(next); a != top.pos;
               a = plane.parent(a)) {
            chain.push_back(a);
          }
          const int64_t skipped =
              (next - top.cursor) - static_cast<int64_t>(chain.size());
          pass.positions_jumped += skipped;
          if (skipped > 0) {
            for (size_t k = top.live_begin; k < top.live_end; ++k) {
              engines[live[k]]->AddVisited(skipped);
            }
          }
          if (chain.empty()) {
            c = next;
          } else {
            for (size_t j = chain.size(); j-- > 0;) {
              const int32_t a = chain[j];
              WalkFrame& parent_frame = stack.back();
              const LabelId al = plane.label(a);
              const size_t child_begin = live.size();
              for (size_t k = parent_frame.live_begin;
                   k < parent_frame.live_end; ++k) {
                const uint32_t ei = live[k];
                const bool descended = engines[ei]->DescendInto(al, 0);
                assert(descended && "transparent label must not prune");
                (void)descended;
                live.push_back(ei);
              }
              parent_frame.cursor = plane.end_of(a);
              ++pass.nodes_walked;
              stack.push_back({a, plane.end_of(a),
                               j > 0 ? plane.end_of(chain[j - 1]) : next, 0,
                               child_begin, live.size(), true, false,
                               parent_frame.rel_begin,
                               parent_frame.rel_end});
            }
            // Resume at the deepest replayed frame; its jump scan finds the
            // candidate immediately (cursor == next).
            continue;
          }
        }
      }
    }

    if (c >= top.end) {
      for (size_t k = top.live_begin; k < top.live_end; ++k) {
        engines[live[k]]->ExitNode(plane.node_at(top.pos));
      }
      live.resize(top.live_begin);
      if (top.owns_rel) rel_arena.resize(top.rel_begin);
      stack.pop_back();
      continue;
    }

    // Decode the child and resolve its subtree label set once, for everyone.
    const LabelId cl = plane.label(c);
    const int32_t eff_c = index != nullptr
                              ? index->EffectiveSet(plane.node_at(c),
                                                    top.eff_set)
                              : top.eff_set;
    top.cursor = plane.end_of(c);

    const size_t child_begin = live.size();
    for (size_t k = top.live_begin; k < top.live_end; ++k) {
      const uint32_t ei = live[k];
      if (engines[ei]->DescendInto(cl, eff_c)) live.push_back(ei);
    }
    if (live.size() > child_begin) {
      ++pass.nodes_walked;
      stack.push_back({c, plane.end_of(c), c + 1, eff_c, child_begin,
                       live.size(), false, false, 0, 0});
      decide_jump(&stack.back());
    } else {
      ++pass.subtrees_skipped;  // every live engine pruned this subtree
    }
  }
  return pass;
}

}  // namespace smoqe::hype
