#!/usr/bin/env python3
"""Bench regression gate for the CI smoke benches.

Compares a freshly produced BENCH_*.json against the baseline artifact
downloaded from main and fails (exit 1) when any matched queries/sec figure
dropped by more than --tolerance (default 25%).

Understands all three smoke formats:
  * BENCH_throughput.json: {"results": [{"batch", "indexed",
    "per_query_qps", "batched_qps", ...}]} -- gates batched_qps and
    per_query_qps per (batch, indexed) configuration;
  * BENCH_parallel.json: {"solo_qps", "sharded": [{"threads", "qps", ...}],
    "service": [{"clients", "qps"}]} -- gates solo_qps, qps per thread
    count, and qps per client count;
  * BENCH_docplane.json: {"workloads": [{"name", "batch_full_qps",
    "batch_jump_qps", "sharded_baseline_qps", "sharded_jump_qps", ...}]} --
    gates every qps figure per workload (the >= 1.5x sparse jump-vs-baseline
    bar itself is enforced inside bench_docplane, after its bit-identity
    gate).

A missing/unreadable baseline is not an error (first run on a branch, expired
artifact): the gate prints a warning and passes, so the pipeline bootstraps
itself. Smoke runs on shared runners are noisy; the tolerance is deliberately
loose and only guards against step-function regressions.
"""

import argparse
import json
import sys


def extract_metrics(data):
    """Flattens a smoke JSON into {metric_name: qps}."""
    metrics = {}
    for row in data.get("results", []):  # BENCH_throughput.json
        key = f"batch={row['batch']}/indexed={row['indexed']}"
        metrics[f"throughput/{key}/batched_qps"] = row["batched_qps"]
        metrics[f"throughput/{key}/per_query_qps"] = row["per_query_qps"]
    if "solo_qps" in data:  # BENCH_parallel.json
        metrics["parallel/solo_qps"] = data["solo_qps"]
    for row in data.get("sharded", []):
        metrics[f"parallel/sharded/threads={row['threads']}/qps"] = row["qps"]
    for row in data.get("service", []):
        metrics[f"parallel/service/clients={row['clients']}/qps"] = row["qps"]
    for row in data.get("workloads", []):  # BENCH_docplane.json
        for key in ("batch_full_qps", "batch_jump_qps",
                    "sharded_baseline_qps", "sharded_jump_qps"):
            metrics[f"docplane/{row['name']}/{key}"] = row[key]
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional qps drop (0.25 = 25%%)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = extract_metrics(json.load(f))
    except (OSError, ValueError, KeyError) as e:
        print(f"WARNING: no usable baseline at {args.baseline} ({e}); "
              "skipping the regression gate")
        return 0

    with open(args.current) as f:
        current = extract_metrics(json.load(f))

    failures = []
    for name, base_qps in sorted(baseline.items()):
        if name not in current:
            print(f"  [gone]  {name} (baseline {base_qps:.0f} qps) -- "
                  "configuration no longer emitted, not gated")
            continue
        cur_qps = current[name]
        ratio = cur_qps / base_qps if base_qps > 0 else float("inf")
        status = "OK" if ratio >= 1.0 - args.tolerance else "REGRESSED"
        print(f"  [{status:>9}] {name}: {base_qps:.0f} -> {cur_qps:.0f} qps "
              f"({ratio:.1%} of baseline)")
        if status == "REGRESSED":
            failures.append(name)

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) dropped more than "
              f"{args.tolerance:.0%} below the main baseline:")
        for name in failures:
            print(f"  - {name}")
        return 1
    print(f"\nPASS: no metric dropped more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
