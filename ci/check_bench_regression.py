#!/usr/bin/env python3
"""Bench regression gate for the CI smoke benches.

Compares a freshly produced BENCH_*.json against the baseline artifact
downloaded from main and fails (exit 1) when any matched queries/sec figure
dropped by more than --tolerance (default 25%), or when a gated COUNTER grew
(counters gate work done, not wall time: they are deterministic, so the
tolerance is zero by default).

Understands all four smoke formats:
  * BENCH_throughput.json: {"results": [{"batch", "indexed",
    "per_query_qps", "batched_qps", ...}]} -- gates batched_qps and
    per_query_qps per (batch, indexed) configuration;
  * BENCH_parallel.json: {"solo_qps", "sharded": [{"threads", "qps", ...}],
    "service": [{"clients", "qps"}]} -- gates solo_qps, qps per thread
    count, and qps per client count;
  * BENCH_docplane.json: {"workloads": [{"name", "batch_full_qps",
    "batch_jump_qps", "sharded_baseline_qps", "sharded_jump_qps",
    "configs_interned_*", ...}]} -- gates every qps figure per workload
    (the >= 1.5x sparse jump-vs-baseline bar itself is enforced inside
    bench_docplane, after its bit-identity gate) and the interning counters
    (warm-start interning must not grow vs main: plane sharing must keep
    re-runs at zero insertions);
  * BENCH_rewrite.json: {"compiles_per_sec", "cache_hits_per_sec",
    "cold_starts_per_sec", "warm_starts_per_sec", "counters": {...}} --
    gates the four rates plus the configs_interned counters;
  * BENCH_mutation.json: {"mutation": {"read_only_qps", "mixed_qps",
    "writes_per_sec", "advances_per_sec", "counters": {...}}} -- gates the
    rates plus the warm-advance interning counter (a warm delta
    re-evaluation that interns configurations again means the standing
    queries stopped reusing the shared transition plane).

A missing/unreadable baseline is not an error (first run on a branch, expired
artifact, a bench newly added like BENCH_mutation.json): the gate prints a
warning and passes, so the pipeline bootstraps itself. A baseline metric
whose qps reads zero is likewise skipped with a warning (a degenerate
artifact must not wedge the gate with divide-by-zero ratios). Smoke runs on
shared runners are noisy; the qps tolerance is deliberately loose and only
guards against step-function regressions.
"""

import argparse
import json
import sys


def extract_metrics(data):
    """Flattens a smoke JSON into {metric_name: qps} (higher is better)."""
    metrics = {}
    for row in data.get("results", []):  # BENCH_throughput.json
        key = f"batch={row['batch']}/indexed={row['indexed']}"
        metrics[f"throughput/{key}/batched_qps"] = row["batched_qps"]
        metrics[f"throughput/{key}/per_query_qps"] = row["per_query_qps"]
    if "solo_qps" in data:  # BENCH_parallel.json
        metrics["parallel/solo_qps"] = data["solo_qps"]
    for row in data.get("sharded", []):
        metrics[f"parallel/sharded/threads={row['threads']}/qps"] = row["qps"]
    for row in data.get("service", []):
        metrics[f"parallel/service/clients={row['clients']}/qps"] = row["qps"]
    for row in data.get("workloads", []):  # BENCH_docplane.json
        for key in ("batch_full_qps", "batch_jump_qps",
                    "sharded_baseline_qps", "sharded_jump_qps"):
            metrics[f"docplane/{row['name']}/{key}"] = row[key]
    if "compiles_per_sec" in data:  # BENCH_rewrite.json
        for key in ("compiles_per_sec", "cache_hits_per_sec",
                    "cold_starts_per_sec", "warm_starts_per_sec"):
            metrics[f"rewrite/{key}"] = data[key]
    mutation = data.get("mutation", {})  # BENCH_mutation.json
    for key in ("read_only_qps", "mixed_qps", "writes_per_sec",
                "advances_per_sec"):
        if key in mutation:
            metrics[f"mutation/{key}"] = mutation[key]
    return metrics


def extract_counters(data):
    """Flattens gated counters into {name: value} (lower is better; growth
    beyond --counter-tolerance fails). Counters are work counts, not
    timings, so they are stable across runners."""
    counters = {}
    for name, value in data.get("counters", {}).items():  # BENCH_rewrite.json
        counters[f"rewrite/{name}"] = value
    for row in data.get("workloads", []):  # BENCH_docplane.json
        for key in ("configs_interned_sharded_cold",
                    "configs_interned_sharded_warm_delta"):
            if key in row:
                counters[f"docplane/{row['name']}/{key}"] = row[key]
    for row in data.get("service", []):  # BENCH_parallel.json
        # The smoke workload carries no deadlines or cancellations, so any
        # timed-out/shed/cancelled query is the overload machinery
        # misfiring; zero tolerance. Absent in pre-PR-7 baselines, which
        # extraction tolerates automatically (iteration is baseline-driven).
        for key in ("queries_timed_out", "queries_shed", "queries_cancelled"):
            if key in row:
                counters[f"parallel/service/clients={row['clients']}/{key}"] \
                    = row[key]
    for name, value in data.get("mutation", {}).get("counters", {}).items():
        counters[f"mutation/{name}"] = value  # BENCH_mutation.json
    return counters


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional qps drop (0.25 = 25%%)")
    parser.add_argument("--counter-tolerance", type=float, default=0.0,
                        help="allowed fractional counter growth (0 = any "
                             "increase fails)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline_data = json.load(f)
        baseline = extract_metrics(baseline_data)
        baseline_counters = extract_counters(baseline_data)
    except (OSError, ValueError, KeyError) as e:
        print(f"WARNING: no usable baseline at {args.baseline} ({e}); "
              "skipping the regression gate")
        return 0

    try:
        with open(args.current) as f:
            current_data = json.load(f)
        current = extract_metrics(current_data)
        current_counters = extract_counters(current_data)
    except (OSError, ValueError, KeyError) as e:
        # The bench that should have produced the artifact failed or wrote
        # garbage: fail the gate, but with a diagnosis instead of a
        # traceback.
        print(f"ERROR: no usable current artifact at {args.current} ({e})")
        return 1

    failures = []
    for name, base_qps in sorted(baseline.items()):
        if name not in current:
            print(f"  [gone]  {name} (baseline {base_qps:.0f} qps) -- "
                  "configuration no longer emitted, not gated")
            continue
        cur_qps = current[name]
        if base_qps <= 0:
            print(f"  [skipped] {name}: baseline qps is {base_qps}, "
                  "not gated (degenerate baseline artifact)")
            continue
        ratio = cur_qps / base_qps
        status = "OK" if ratio >= 1.0 - args.tolerance else "REGRESSED"
        print(f"  [{status:>9}] {name}: {base_qps:.0f} -> {cur_qps:.0f} qps "
              f"({ratio:.1%} of baseline)")
        if status == "REGRESSED":
            failures.append(name)

    # Counter gate: deterministic work counts must not GROW vs main. A warm
    # start that suddenly interns configurations again means the shared
    # transition plane stopped being shared.
    for name, base_count in sorted(baseline_counters.items()):
        if name not in current_counters:
            print(f"  [gone]  {name} (baseline counter {base_count}) -- "
                  "no longer emitted, not gated")
            continue
        cur_count = current_counters[name]
        limit = base_count * (1.0 + args.counter_tolerance)
        status = "OK" if cur_count <= limit else "GREW"
        print(f"  [{status:>9}] {name}: {base_count} -> {cur_count} "
              "(counter, must not grow)")
        if status == "GREW":
            failures.append(name)

    if failures:
        print(f"\nFAIL: {len(failures)} metric(s)/counter(s) regressed vs "
              "the main baseline:")
        for name in failures:
            print(f"  - {name}")
        return 1
    print(f"\nPASS: no qps metric dropped more than {args.tolerance:.0%} and "
          "no gated counter grew")
    return 0


if __name__ == "__main__":
    sys.exit(main())
