#!/usr/bin/env python3
"""Bench regression gate for the CI smoke benches.

Compares a freshly produced BENCH_*.json against the baseline artifact
downloaded from main and fails (exit 1) when any matched queries/sec figure
dropped by more than --tolerance (default 25%), or when a gated COUNTER grew
(counters gate work done, not wall time: they are deterministic, so the
tolerance is zero by default).

Understands all seven smoke formats:
  * BENCH_throughput.json: {"results": [{"batch", "indexed",
    "per_query_qps", "batched_qps", ...}]} -- gates batched_qps and
    per_query_qps per (batch, indexed) configuration;
  * BENCH_parallel.json: {"solo_qps", "sharded": [{"threads", "qps", ...}],
    "service": [{"clients", "qps"}]} -- gates solo_qps, qps per thread
    count, and qps per client count;
  * BENCH_docplane.json: {"workloads": [{"name", "batch_full_qps",
    "batch_jump_qps", "sharded_baseline_qps", "sharded_jump_qps",
    "configs_interned_*", ...}]} -- gates every qps figure per workload
    (the >= 1.5x sparse jump-vs-baseline bar itself is enforced inside
    bench_docplane, after its bit-identity gate) and the interning counters
    (warm-start interning must not grow vs main: plane sharing must keep
    re-runs at zero insertions);
  * BENCH_rewrite.json: {"compiles_per_sec", "cache_hits_per_sec",
    "cold_starts_per_sec", "warm_starts_per_sec", "counters": {...}} --
    gates the four rates plus the configs_interned counters;
  * BENCH_mutation.json: {"mutation": {"read_only_qps", "mixed_qps",
    "writes_per_sec", "advances_per_sec", "counters": {...}}} -- gates the
    rates plus the warm-advance interning counter (a warm delta
    re-evaluation that interns configurations again means the standing
    queries stopped reusing the shared transition plane);
  * BENCH_authz.json: {"authz": {"sweep": [{"roles", "warm_qps",
    "materialize_qps", ...}], "counters": {...}}} -- gates warm and
    materialize qps per role count plus the warm-role interning counter
    (zero: a warm role partition must reuse its planes) and the
    deterministic eviction count (the >= 5x warm-vs-materialize bar itself
    is enforced inside bench_authz, after its bit-identity gate);
  * BENCH_recovery.json: {"recovery": {"recoveries_per_sec",
    "reparses_per_sec", "inmemory_mixed_qps", "durable_mixed_qps",
    "counters": {...}}} -- gates the cold-start and mixed-throughput rates
    plus the durability failure counters (wal_rollbacks,
    compactions_failed, recovery_bytes_truncated: a healthy smoke run must
    keep all three at zero; the >= 0.5x durable-vs-in-memory bar itself is
    enforced inside bench_recovery, after its recovery bit-identity gate).

A metric present in the PR artifact but absent from the baseline (a newly
added bench or sweep point) passes with a [new] notice -- it becomes gated
once the baseline refreshes from main. A missing/unreadable baseline is not
an error either (first run on a branch, expired artifact): the gate prints
a warning and passes, so the pipeline bootstraps itself. A baseline metric
whose qps reads zero is likewise skipped with a warning (a degenerate
artifact must not wedge the gate with divide-by-zero ratios). Smoke runs on
shared runners are noisy; the qps tolerance is deliberately loose and only
guards against step-function regressions.

--self-test runs a built-in fixture suite over the extraction and gating
logic (invoked by CI before the real gates, so a broken gate script cannot
silently wave regressions through).
"""

import argparse
import json
import sys


def extract_metrics(data):
    """Flattens a smoke JSON into {metric_name: qps} (higher is better)."""
    metrics = {}
    for row in data.get("results", []):  # BENCH_throughput.json
        key = f"batch={row['batch']}/indexed={row['indexed']}"
        metrics[f"throughput/{key}/batched_qps"] = row["batched_qps"]
        metrics[f"throughput/{key}/per_query_qps"] = row["per_query_qps"]
    if "solo_qps" in data:  # BENCH_parallel.json
        metrics["parallel/solo_qps"] = data["solo_qps"]
    for row in data.get("sharded", []):
        metrics[f"parallel/sharded/threads={row['threads']}/qps"] = row["qps"]
    for row in data.get("service", []):
        metrics[f"parallel/service/clients={row['clients']}/qps"] = row["qps"]
    for row in data.get("workloads", []):  # BENCH_docplane.json
        for key in ("batch_full_qps", "batch_jump_qps",
                    "sharded_baseline_qps", "sharded_jump_qps"):
            metrics[f"docplane/{row['name']}/{key}"] = row[key]
    if "compiles_per_sec" in data:  # BENCH_rewrite.json
        for key in ("compiles_per_sec", "cache_hits_per_sec",
                    "cold_starts_per_sec", "warm_starts_per_sec"):
            metrics[f"rewrite/{key}"] = data[key]
    mutation = data.get("mutation", {})  # BENCH_mutation.json
    for key in ("read_only_qps", "mixed_qps", "writes_per_sec",
                "advances_per_sec"):
        if key in mutation:
            metrics[f"mutation/{key}"] = mutation[key]
    for row in data.get("authz", {}).get("sweep", []):  # BENCH_authz.json
        for key in ("warm_qps", "materialize_qps"):
            if key in row:
                metrics[f"authz/roles={row['roles']}/{key}"] = row[key]
    recovery = data.get("recovery", {})  # BENCH_recovery.json
    for key in ("recoveries_per_sec", "reparses_per_sec",
                "inmemory_mixed_qps", "durable_mixed_qps"):
        if key in recovery:
            metrics[f"recovery/{key}"] = recovery[key]
    return metrics


def extract_counters(data):
    """Flattens gated counters into {name: value} (lower is better; growth
    beyond --counter-tolerance fails). Counters are work counts, not
    timings, so they are stable across runners."""
    counters = {}
    for name, value in data.get("counters", {}).items():  # BENCH_rewrite.json
        counters[f"rewrite/{name}"] = value
    for row in data.get("workloads", []):  # BENCH_docplane.json
        for key in ("configs_interned_sharded_cold",
                    "configs_interned_sharded_warm_delta"):
            if key in row:
                counters[f"docplane/{row['name']}/{key}"] = row[key]
    for row in data.get("service", []):  # BENCH_parallel.json
        # The smoke workload carries no deadlines or cancellations, so any
        # timed-out/shed/cancelled query is the overload machinery
        # misfiring; zero tolerance. Absent in pre-PR-7 baselines, which
        # extraction tolerates automatically (iteration is baseline-driven).
        for key in ("queries_timed_out", "queries_shed", "queries_cancelled",
                    "queries_retried"):
            if key in row:
                counters[f"parallel/service/clients={row['clients']}/{key}"] \
                    = row[key]
    for name, value in data.get("mutation", {}).get("counters", {}).items():
        counters[f"mutation/{name}"] = value  # BENCH_mutation.json
    for name, value in data.get("authz", {}).get("counters", {}).items():
        counters[f"authz/{name}"] = value  # BENCH_authz.json
    for name, value in data.get("recovery", {}).get("counters", {}).items():
        counters[f"recovery/{name}"] = value  # BENCH_recovery.json
    return counters


def compare(baseline_data, current_data, tolerance, counter_tolerance):
    """Gates `current_data` against `baseline_data`; returns the list of
    failed metric/counter names (empty = pass)."""
    baseline = extract_metrics(baseline_data)
    baseline_counters = extract_counters(baseline_data)
    current = extract_metrics(current_data)
    current_counters = extract_counters(current_data)

    failures = []
    for name, base_qps in sorted(baseline.items()):
        if name not in current:
            print(f"  [gone]  {name} (baseline {base_qps:.0f} qps) -- "
                  "configuration no longer emitted, not gated")
            continue
        cur_qps = current[name]
        if base_qps <= 0:
            print(f"  [skipped] {name}: baseline qps is {base_qps}, "
                  "not gated (degenerate baseline artifact)")
            continue
        ratio = cur_qps / base_qps
        status = "OK" if ratio >= 1.0 - tolerance else "REGRESSED"
        print(f"  [{status:>9}] {name}: {base_qps:.0f} -> {cur_qps:.0f} qps "
              f"({ratio:.1%} of baseline)")
        if status == "REGRESSED":
            failures.append(name)
    # A metric the baseline has never seen (new bench, new sweep point)
    # cannot be gated yet: pass with a notice so its first run is visible
    # in the log, and let the refreshed main artifact pick it up.
    for name, cur_qps in sorted(current.items()):
        if name not in baseline:
            print(f"  [new]   {name}: {cur_qps:.0f} qps -- no baseline "
                  "yet, pass with notice (gated once main publishes one)")

    # Counter gate: deterministic work counts must not GROW vs main. A warm
    # start that suddenly interns configurations again means the shared
    # transition plane stopped being shared.
    for name, base_count in sorted(baseline_counters.items()):
        if name not in current_counters:
            print(f"  [gone]  {name} (baseline counter {base_count}) -- "
                  "no longer emitted, not gated")
            continue
        cur_count = current_counters[name]
        limit = base_count * (1.0 + counter_tolerance)
        status = "OK" if cur_count <= limit else "GREW"
        print(f"  [{status:>9}] {name}: {base_count} -> {cur_count} "
              "(counter, must not grow)")
        if status == "GREW":
            failures.append(name)
    for name, cur_count in sorted(current_counters.items()):
        if name not in baseline_counters:
            print(f"  [new]   {name}: counter {cur_count} -- no baseline "
                  "yet, pass with notice")
    return failures


def self_test():
    """Fixture suite over extraction and gating; exits nonzero on the first
    broken invariant. Fixtures are miniature but structurally faithful
    copies of every smoke format the gate claims to understand."""
    fixtures = {
        "throughput": {"results": [
            {"batch": 16, "indexed": True,
             "batched_qps": 100.0, "per_query_qps": 50.0}]},
        "parallel": {"solo_qps": 10.0,
                     "sharded": [{"threads": 4, "qps": 40.0}],
                     "service": [{"clients": 8, "qps": 80.0,
                                  "queries_shed": 0,
                                  "queries_retried": 0}]},
        "docplane": {"workloads": [
            {"name": "sparse", "batch_full_qps": 1.0, "batch_jump_qps": 2.0,
             "sharded_baseline_qps": 3.0, "sharded_jump_qps": 4.0,
             "configs_interned_sharded_cold": 7,
             "configs_interned_sharded_warm_delta": 0}]},
        "rewrite": {"compiles_per_sec": 1.0, "cache_hits_per_sec": 2.0,
                    "cold_starts_per_sec": 3.0, "warm_starts_per_sec": 4.0,
                    "counters": {"configs_interned_warm": 0}},
        "mutation": {"mutation": {
            "read_only_qps": 9.0, "mixed_qps": 8.0, "writes_per_sec": 1.0,
            "advances_per_sec": 2.0,
            "counters": {"configs_interned_warm_advance": 0}}},
        "authz": {"authz": {
            "sweep": [{"roles": 100, "warm_qps": 500.0,
                       "materialize_qps": 50.0},
                      {"roles": 1000, "warm_qps": 400.0,
                       "materialize_qps": 40.0}],
            "counters": {"configs_interned_warm_role": 0,
                         "planes_evicted": 8}}},
        "recovery": {"recovery": {
            "recoveries_per_sec": 600.0, "reparses_per_sec": 400.0,
            "inmemory_mixed_qps": 2000.0, "durable_mixed_qps": 1700.0,
            "counters": {"wal_rollbacks": 0, "compactions_failed": 0,
                         "recovery_bytes_truncated": 0}}},
    }
    expected_metrics = {"throughput": 2, "parallel": 3, "docplane": 4,
                        "rewrite": 4, "mutation": 4, "authz": 4,
                        "recovery": 4}
    expected_counters = {"throughput": 0, "parallel": 2, "docplane": 2,
                         "rewrite": 1, "mutation": 1, "authz": 2,
                         "recovery": 3}
    checks = 0

    def check(ok, what):
        nonlocal checks
        checks += 1
        if not ok:
            print(f"SELF-TEST FAIL: {what}")
            sys.exit(1)

    for name, data in fixtures.items():
        check(len(extract_metrics(data)) == expected_metrics[name],
              f"{name}: expected {expected_metrics[name]} metrics, "
              f"got {sorted(extract_metrics(data))}")
        check(len(extract_counters(data)) == expected_counters[name],
              f"{name}: expected {expected_counters[name]} counters, "
              f"got {sorted(extract_counters(data))}")
        # Identity must always gate clean.
        check(compare(data, data, 0.25, 0.0) == [],
              f"{name}: identical artifacts must pass")

    authz = fixtures["authz"]
    # A >tolerance qps drop fails, naming the metric.
    dropped = json.loads(json.dumps(authz))
    dropped["authz"]["sweep"][1]["warm_qps"] = 100.0
    check(compare(authz, dropped, 0.25, 0.0)
          == ["authz/roles=1000/warm_qps"], "qps drop must fail the gate")
    # A drop inside tolerance passes.
    wobble = json.loads(json.dumps(authz))
    wobble["authz"]["sweep"][1]["warm_qps"] = 320.0
    check(compare(authz, wobble, 0.25, 0.0) == [],
          "in-tolerance qps wobble must pass")
    # Counter growth fails at zero tolerance.
    grew = json.loads(json.dumps(authz))
    grew["authz"]["counters"]["configs_interned_warm_role"] = 3
    check(compare(authz, grew, 0.25, 0.0)
          == ["authz/configs_interned_warm_role"],
          "counter growth must fail the gate")
    # Metric in PR but not in baseline: pass with notice (the ratchet for
    # newly added benches/sweep points).
    pre_authz = {"mutation": fixtures["mutation"]["mutation"]}
    merged = json.loads(json.dumps(fixtures["mutation"]))
    merged.update(json.loads(json.dumps(authz)))
    check(compare(pre_authz, merged, 0.25, 0.0) == [],
          "new metrics absent from baseline must pass with notice")
    # Metric gone from the PR: not gated (configuration retired).
    check(compare(merged, fixtures["mutation"], 0.25, 0.0) == [],
          "metrics gone from the PR artifact must not fail the gate")
    # Degenerate zero-qps baseline is skipped, not divided by.
    zero = json.loads(json.dumps(authz))
    zero["authz"]["sweep"][0]["warm_qps"] = 0.0
    check(compare(zero, authz, 0.25, 0.0) == [],
          "zero-qps baseline must be skipped")

    print(f"\nSELF-TEST PASS: {checks} checks over "
          f"{len(fixtures)} smoke formats")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional qps drop (0.25 = 25%%)")
    parser.add_argument("--counter-tolerance", type=float, default=0.0,
                        help="allowed fractional counter growth (0 = any "
                             "increase fails)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(unless --self-test)")

    try:
        with open(args.baseline) as f:
            baseline_data = json.load(f)
        extract_metrics(baseline_data)  # validate before gating
    except (OSError, ValueError, KeyError) as e:
        print(f"WARNING: no usable baseline at {args.baseline} ({e}); "
              "skipping the regression gate")
        return 0

    try:
        with open(args.current) as f:
            current_data = json.load(f)
    except (OSError, ValueError, KeyError) as e:
        # The bench that should have produced the artifact failed or wrote
        # garbage: fail the gate, but with a diagnosis instead of a
        # traceback.
        print(f"ERROR: no usable current artifact at {args.current} ({e})")
        return 1

    failures = compare(baseline_data, current_data, args.tolerance,
                       args.counter_tolerance)
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s)/counter(s) regressed vs "
              "the main baseline:")
        for name in failures:
            print(f"  - {name}")
        return 1
    print(f"\nPASS: no qps metric dropped more than {args.tolerance:.0%} and "
          "no gated counter grew")
    return 0


if __name__ == "__main__":
    sys.exit(main())
